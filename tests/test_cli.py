"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import FIGURE_ENTRY_POINTS, build_parser, main
from repro.datasets.stocks import generate_regime_switching_stream
from repro.datasets.synthetic import make_time_series_dataset


@pytest.fixture
def data_csv(tmp_path):
    dataset = make_time_series_dataset(30, 40, 3, noise=0.8, seed=2)
    path = tmp_path / "series.csv"
    np.savetxt(path, dataset.data, delimiter=",")
    return path, dataset


class TestClusterCommand:
    def test_writes_labels_file(self, data_csv, tmp_path, capsys):
        path, dataset = data_csv
        out = tmp_path / "labels.txt"
        exit_code = main(
            ["cluster", str(path), "--clusters", "3", "--prefix", "2", "--out", str(out)]
        )
        assert exit_code == 0
        labels = np.loadtxt(out, dtype=int)
        assert labels.shape == (30,)
        assert len(np.unique(labels)) == 3

    def test_prints_labels_without_out(self, data_csv, capsys):
        path, _ = data_csv
        assert main(["cluster", str(path), "--clusters", "2"]) == 0
        captured = capsys.readouterr().out
        assert "clusters: 2" in captured

    def test_newick_export(self, data_csv, tmp_path):
        path, _ = data_csv
        newick_path = tmp_path / "tree.nwk"
        main(
            [
                "cluster",
                str(path),
                "--clusters",
                "3",
                "--newick",
                str(newick_path),
            ]
        )
        text = newick_path.read_text()
        assert text.strip().endswith(";")
        assert text.count("(") == text.count(")")

    def test_npy_input_and_precomputed_similarity(self, tmp_path):
        rng = np.random.default_rng(0)
        raw = rng.uniform(0, 1, size=(12, 12))
        similarity = (raw + raw.T) / 2
        np.fill_diagonal(similarity, 1.0)
        path = tmp_path / "similarity.npy"
        np.save(path, similarity)
        assert main(["cluster", str(path), "--clusters", "2", "--precomputed"]) == 0

    def test_invalid_input_shape_rejected(self, tmp_path):
        path = tmp_path / "one_dim.csv"
        np.savetxt(path, np.arange(5.0), delimiter=",")
        with pytest.raises(ValueError):
            main(["cluster", str(path), "--clusters", "2"])


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestKernelAndBackendFlags:
    def test_cluster_with_kernel_and_thread_backend(self, data_csv, tmp_path):
        path, _ = data_csv
        out = tmp_path / "labels.txt"
        exit_code = main(
            [
                "cluster",
                str(path),
                "--clusters",
                "3",
                "--kernel",
                "python",
                "--backend",
                "thread",
                "--workers",
                "2",
                "--out",
                str(out),
            ]
        )
        assert exit_code == 0
        assert np.loadtxt(out, dtype=int).shape == (30,)

    def test_unknown_kernel_rejected(self, data_csv):
        path, _ = data_csv
        with pytest.raises(SystemExit):
            main(["cluster", str(path), "--clusters", "2", "--kernel", "fortran"])

    def test_workers_without_parallel_backend_rejected(self, data_csv, capsys):
        path, _ = data_csv
        assert main(["cluster", str(path), "--clusters", "2", "--workers", "4"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_non_positive_workers_rejected(self, data_csv, capsys):
        path, _ = data_csv
        args = ["cluster", str(path), "--clusters", "2", "--backend", "thread"]
        assert main(args + ["--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err


class TestCacheFlags:
    def test_cache_dir_round_trip_is_byte_identical(self, data_csv, tmp_path):
        from repro.cache import clear_result_caches

        path, _ = data_csv
        cache_dir = tmp_path / "cache"
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        args = ["cluster", str(path), "--clusters", "3", "--prefix", "2",
                "--cache-dir", str(cache_dir)]
        assert main(args + ["--json", str(cold_json)]) == 0
        # Forget the in-process tiers so the second run must hit the disk.
        clear_result_caches()
        assert main(args + ["--json", str(warm_json)]) == 0
        assert cold_json.read_bytes() == warm_json.read_bytes()
        assert any(cache_dir.glob("*.pkl"))

    def test_no_cache_disables_lookups(self, data_csv, tmp_path):
        from repro.cache import clear_result_caches, get_result_cache

        path, _ = data_csv
        clear_result_caches()
        args = ["cluster", str(path), "--clusters", "3", "--prefix", "2",
                "--no-cache", "--out", str(tmp_path / "labels.txt")]
        assert main(args) == 0
        assert get_result_cache().stats.lookups == 0

    def test_no_cache_with_cache_dir_rejected(self, data_csv, tmp_path, capsys):
        path, _ = data_csv
        args = ["cluster", str(path), "--clusters", "3", "--no-cache",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_stream_reports_reused_ticks(self, tmp_path, capsys):
        rng = np.random.default_rng(9)
        block = rng.normal(size=(16, 30))
        data_path = tmp_path / "returns.csv"
        np.savetxt(data_path, np.tile(block, (1, 3)), delimiter=",")
        report = tmp_path / "ticks.json"
        args = ["stream", str(data_path), "--clusters", "3", "--window", "30",
                "--hop", "30", "--cold", "--json", str(report)]
        assert main(args) == 0
        assert "reused (unchanged window): 2" in capsys.readouterr().out
        payload = json.loads(report.read_text())
        assert [tick["reused"] for tick in payload["ticks"]] == [False, True, True]


class TestConfigFile:
    def test_save_and_reload_round_trip(self, data_csv, tmp_path, capsys):
        from repro.api import ClusteringConfig

        path, _ = data_csv
        cfg_path = tmp_path / "cfg.json"
        out_a = tmp_path / "labels_a.txt"
        out_b = tmp_path / "labels_b.txt"
        # First run resolves the flags into a config and saves it ...
        assert (
            main(
                [
                    "cluster",
                    str(path),
                    "--clusters",
                    "3",
                    "--prefix",
                    "2",
                    "--save-config",
                    str(cfg_path),
                    "--out",
                    str(out_a),
                ]
            )
            == 0
        )
        saved = ClusteringConfig.from_json(cfg_path.read_text())
        assert saved.num_clusters == 3 and saved.prefix == 2
        # ... and the second run reproduces it from the config alone.
        assert main(["cluster", str(path), "--config", str(cfg_path), "--out", str(out_b)]) == 0
        np.testing.assert_array_equal(
            np.loadtxt(out_a, dtype=int), np.loadtxt(out_b, dtype=int)
        )

    def test_flags_override_config_file(self, data_csv, tmp_path, capsys):
        from repro.api import ClusteringConfig

        path, _ = data_csv
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(ClusteringConfig(num_clusters=3, prefix=2).to_json())
        assert (
            main(["cluster", str(path), "--config", str(cfg_path), "--clusters", "2"]) == 0
        )
        assert "clusters: 2" in capsys.readouterr().out

    def test_missing_clusters_everywhere_rejected(self, data_csv, capsys):
        path, _ = data_csv
        assert main(["cluster", str(path)]) == 2
        assert "--clusters" in capsys.readouterr().err

    def test_partial_config_keeps_subcommand_defaults(self, data_csv, tmp_path, capsys):
        path, _ = data_csv
        cfg_path = tmp_path / "partial.json"
        cfg_path.write_text('{"num_clusters": 3}')
        saved = tmp_path / "resolved.json"
        assert (
            main(
                [
                    "cluster",
                    str(path),
                    "--config",
                    str(cfg_path),
                    "--save-config",
                    str(saved),
                ]
            )
            == 0
        )
        resolved = json.loads(saved.read_text())
        # cluster's default prefix (10) survives a partial config file
        assert resolved["prefix"] == 10 and resolved["num_clusters"] == 3

    def test_save_config_not_written_on_failed_run(self, data_csv, tmp_path):
        path, _ = data_csv
        saved = tmp_path / "cfg.json"
        exit_code = main(
            [
                "cluster",
                str(path),
                "--clusters",
                "3",
                "--method",
                "kmeans",
                "--newick",
                str(tmp_path / "t.nwk"),
                "--save-config",
                str(saved),
            ]
        )
        assert exit_code == 2
        assert not saved.exists()

    def test_invalid_config_file_rejected(self, data_csv, tmp_path, capsys):
        path, _ = data_csv
        cfg_path = tmp_path / "bad.json"
        cfg_path.write_text('{"warp_drive": true}')
        assert main(["cluster", str(path), "--config", str(cfg_path)]) == 2
        err = capsys.readouterr().err
        assert "warp_drive" in err
        # config-file errors keep the JSON field names, not CLI flag spellings
        assert "num_clusters" in err and "--clusters" not in err

    def test_config_field_error_keeps_json_spelling(self, data_csv, tmp_path, capsys):
        path, _ = data_csv
        cfg_path = tmp_path / "bad.json"
        cfg_path.write_text('{"num_clusters": 3, "apsp_method": "bellman-ford"}')
        assert main(["cluster", str(path), "--config", str(cfg_path)]) == 2
        err = capsys.readouterr().err
        assert "apsp_method" in err and "--apsp" not in err

    def test_stream_warm_flag_overrides_cold_config(self, tmp_path, capsys):
        from repro.api import ClusteringConfig
        from repro.datasets.stocks import generate_regime_switching_stream

        stream = generate_regime_switching_stream(num_stocks=48, num_days=120, seed=4)
        data_path = tmp_path / "returns.csv"
        np.savetxt(data_path, stream.returns, delimiter=",")
        cfg_path = tmp_path / "cfg.json"
        cfg_path.write_text(ClusteringConfig(num_clusters=3, warm_start=False).to_json())
        args = ["stream", str(data_path), "--config", str(cfg_path), "--window", "80", "--hop", "20"]
        assert main(args + ["--warm"]) == 0
        assert "(warm, window=80" in capsys.readouterr().out
        assert main(args) == 0
        assert "(cold, window=80" in capsys.readouterr().out
        assert main(args + ["--warm", "--cold"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestMethodFlag:
    def test_hac_method(self, data_csv, capsys):
        path, _ = data_csv
        assert main(["cluster", str(path), "--clusters", "3", "--method", "hac-average"]) == 0
        assert "clusters: 3" in capsys.readouterr().out

    def test_kmeans_method_rejects_newick(self, data_csv, tmp_path, capsys):
        path, _ = data_csv
        newick = tmp_path / "tree.nwk"
        out = tmp_path / "labels.txt"
        exit_code = main(
            [
                "cluster",
                str(path),
                "--clusters",
                "3",
                "--method",
                "kmeans",
                "--newick",
                str(newick),
                "--out",
                str(out),
            ]
        )
        assert exit_code == 2
        assert "dendrogram" in capsys.readouterr().err
        # the failing run must not leave partial output behind
        assert not out.exists() and not newick.exists()

    def test_list_methods(self, capsys):
        from repro.api import available_estimators

        assert main(["list-methods"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == set(available_estimators())

    def test_result_json_export(self, data_csv, tmp_path):
        path, _ = data_csv
        report = tmp_path / "result.json"
        assert (
            main(["cluster", str(path), "--clusters", "3", "--json", str(report)]) == 0
        )
        payload = json.loads(report.read_text())
        assert payload["method"] == "tmfg-dbht"
        assert payload["num_clusters"] == 3
        assert len(payload["labels"]) == 30


@pytest.fixture
def returns_csv(tmp_path):
    stream = generate_regime_switching_stream(num_stocks=48, num_days=150, seed=9)
    path = tmp_path / "returns.csv"
    np.savetxt(path, stream.returns, delimiter=",")
    return path, stream


class TestStreamCommand:
    def test_stream_prints_ticks_and_summary(self, returns_csv, capsys):
        path, _ = returns_csv
        exit_code = main(
            ["stream", str(path), "--clusters", "4", "--window", "80", "--hop", "20"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Streaming TMFG+DBHT (warm, window=80, hop=20)" in out
        assert "drift-ARI" in out
        assert "mean consecutive-tick drift" in out

    def test_stream_writes_labels_and_json(self, returns_csv, tmp_path):
        path, stream = returns_csv
        out = tmp_path / "labels.txt"
        report = tmp_path / "ticks.json"
        exit_code = main(
            [
                "stream",
                str(path),
                "--clusters",
                "4",
                "--window",
                "100",
                "--hop",
                "25",
                "--out",
                str(out),
                "--json",
                str(report),
            ]
        )
        assert exit_code == 0
        labels = np.loadtxt(out, dtype=int)
        assert labels.shape == (stream.num_stocks,)
        payload = json.loads(report.read_text())
        assert payload["window"] == 100 and payload["warm"] is True
        assert len(payload["ticks"]) == 1 + (150 - 100) // 25
        assert {"similarity", "tmfg", "apsp", "total"} <= set(
            payload["mean_step_seconds"]
        )

    def test_cold_mode_with_kernel_and_max_ticks(self, returns_csv, capsys):
        path, _ = returns_csv
        exit_code = main(
            [
                "stream",
                str(path),
                "--clusters",
                "3",
                "--window",
                "80",
                "--hop",
                "10",
                "--cold",
                "--kernel",
                "python",
                "--max-ticks",
                "2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "(cold, window=80" in out
        assert out.count("\n[") == 0  # table renders, no tracebacks

    def test_window_larger_than_stream_rejected(self, returns_csv, capsys):
        path, _ = returns_csv
        exit_code = main(
            ["stream", str(path), "--clusters", "3", "--window", "500"]
        )
        assert exit_code == 2
        assert "exceeds the stream length" in capsys.readouterr().err

    def test_workers_without_parallel_backend_rejected(self, returns_csv, capsys):
        path, _ = returns_csv
        args = ["stream", str(path), "--clusters", "3", "--window", "80", "--workers", "2"]
        assert main(args) == 2
        assert "--workers" in capsys.readouterr().err

    def test_stream_requires_window_and_clusters(self, returns_csv, capsys):
        path, _ = returns_csv
        with pytest.raises(SystemExit):
            main(["stream", str(path), "--clusters", "3"])
        # --clusters may come from --config instead, so a missing flag is a
        # clean exit with a message rather than an argparse crash.
        assert main(["stream", str(path), "--window", "80"]) == 2
        assert "--clusters" in capsys.readouterr().err


class TestFigureCommand:
    def test_list_figures(self, capsys):
        assert main(["list-figures"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == set(FIGURE_ENTRY_POINTS)

    def test_appendix_figure_runs(self, capsys):
        assert main(["figure", "appendix"]) == 0
        assert "Appendix" in capsys.readouterr().out

    def test_unknown_figure_returns_error(self, capsys):
        assert main(["figure", "does-not-exist"]) == 2

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestServeCommand:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8752
        assert args.max_batch_size == 16
        assert args.max_wait_ms == 10.0
        assert args.max_queue == 256
        assert args.fit_workers == 2
        assert args.replicas == 1
        assert args.func.__name__ == "_command_serve"

    def test_serve_workers_is_the_replica_count(self):
        # serve's --workers spells the replica count, not the config's
        # backend worker count: it must never leak into ClusteringConfig
        # via the shared `workers` attribute _config_from_args reads.
        args = build_parser().parse_args(["serve", "--workers", "3"])
        assert args.replicas == 3
        assert getattr(args, "workers", None) is None

    def test_serve_rejects_bad_flag_combinations(self, capsys):
        # The shared config plumbing validates serve flags like any other
        # subcommand; a nonsensical replica count is refused up front.
        assert main(["serve", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["serve", "--backend", "thread", "--landmarks", "0"]) == 2
        assert "--landmarks" in capsys.readouterr().err

    def test_serve_end_to_end_over_http(self, tmp_path):
        """`repro serve` as a subprocess: healthz, POST, drain on SIGTERM."""
        import signal
        import subprocess
        import sys as _sys

        from repro.serve import ServeClient

        dataset = make_time_series_dataset(24, 24, 2, noise=0.8, seed=4)
        process = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve", "--port", "0",
             "--clusters", "2", "--prefix", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://127.0.0.1:" in banner
            port = int(banner.split("127.0.0.1:")[1].split()[0].rstrip("/"))
            with ServeClient(port=port) as client:
                client.wait_healthy(30)
                labels = client.cluster_labels(dataset.data)
                assert labels.shape == (24,)
                assert len(np.unique(labels)) == 2
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
            assert "drained and stopped" in process.stdout.read()
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.wait(timeout=10)


class TestLintSubcommand:
    """`repro lint` rides the main CLI (and the numpy-free __main__ shortcut)."""

    def test_lint_is_a_cli_subcommand(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_exits_nonzero_on_a_violation(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\n\nasync def handler():\n    time.sleep(0.1)\n",
            encoding="utf-8",
        )
        assert main(["lint", str(tmp_path)]) == 1
        assert "[async-blocking]" in capsys.readouterr().out

    def test_lint_appears_in_parser_help(self):
        parser = build_parser()
        assert "lint" in parser.format_help()
