"""Tests for the binary matrix transport (`repro.serve.wire`).

Unit-level: frame round trips across dtypes and memory orders, the
zero-copy guarantee of the decoder, malformed-frame rejection, and the
response-envelope byte-identity contract.  Integration-level: a live
server accepting/emitting ``application/x-repro-matrix``, binary and JSON
submissions of the same matrix hitting the same cache entry, 400 (never
500) on truncated/oversized bodies, and 415 + transparent client fallback
when the transport is disabled.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import ClusteringConfig
from repro.cache import clear_result_caches, matrix_fingerprint
from repro.datasets.synthetic import make_time_series_dataset
from repro.parallel import shm
from repro.serve import (
    WIRE_CONTENT_TYPE,
    ClusteringServer,
    ServeClient,
    ServerError,
    WireFormatError,
    wire,
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_result_caches()
    yield
    clear_result_caches()


@pytest.fixture(scope="module")
def series():
    return make_time_series_dataset(
        num_objects=36, length=32, num_classes=3, noise=1.0, seed=19
    ).data


def _start_server(**kwargs):
    defaults = dict(
        port=0,
        default_config=ClusteringConfig(cache=True, num_clusters=3, prefix=2),
        max_batch_size=16,
        max_wait_ms=20.0,
        fit_workers=2,
    )
    defaults.update(kwargs)
    server = ClusteringServer(**defaults)
    return server, server.start_in_background()


# ---------------------------------------------------------------------------
# Frame round trips
# ---------------------------------------------------------------------------


class TestMatrixFrames:
    @pytest.mark.parametrize(
        "dtype", ["<f8", "<f4", "<i8", "<i4", "<i2", "<u4", "|u1", "|b1"]
    )
    def test_round_trip_across_dtypes(self, dtype):
        rng = np.random.default_rng(7)
        matrix = (rng.normal(size=(9, 5)) * 10).astype(np.dtype(dtype))
        decoded, header = wire.decode_matrix(wire.encode_matrix(matrix))
        assert decoded.dtype == matrix.dtype
        assert np.array_equal(decoded, matrix)
        assert header["shape"] == [9, 5]

    def test_fortran_order_input_round_trips_as_c_order(self):
        matrix = np.asfortranarray(np.arange(24.0).reshape(4, 6))
        assert not matrix.flags.c_contiguous
        decoded, _header = wire.decode_matrix(wire.encode_matrix(matrix))
        assert decoded.flags.c_contiguous
        assert np.array_equal(decoded, matrix)

    def test_big_endian_input_is_byte_swapped_on_encode(self):
        matrix = np.arange(6.0).reshape(2, 3).astype(">f8")
        decoded, header = wire.decode_matrix(wire.encode_matrix(matrix))
        assert header["dtype"] == "<f8"
        assert np.array_equal(decoded, matrix.astype("<f8"))

    def test_empty_and_zero_size_shapes(self):
        decoded, _ = wire.decode_matrix(wire.encode_matrix(np.empty((0, 4))))
        assert decoded.shape == (0, 4)

    def test_decode_is_zero_copy(self):
        """The acceptance-criteria no-copy assertion: the decoded matrix is
        a read-only view over the request body's bytes, not a copy."""
        matrix = np.random.default_rng(3).normal(size=(32, 16))
        body = wire.encode_matrix(matrix)
        decoded, _header = wire.decode_matrix(body)
        body_bytes = np.frombuffer(body, dtype=np.uint8)
        assert np.shares_memory(decoded, body_bytes)
        assert not decoded.flags.owndata
        assert not decoded.flags.writeable
        # The view lies entirely inside the body buffer.
        body_start = body_bytes.__array_interface__["data"][0]
        view_start = decoded.__array_interface__["data"][0]
        assert body_start <= view_start
        assert view_start + decoded.nbytes <= body_start + len(body)

    def test_decoded_view_fingerprints_without_copy_and_matches(self):
        matrix = np.random.default_rng(5).normal(size=(20, 10))
        decoded, _ = wire.decode_matrix(wire.encode_matrix(matrix))
        # matrix_fingerprint hashes the read-only view through the buffer
        # protocol; the key must equal the owned-copy key (cache sharing).
        assert matrix_fingerprint(decoded) == matrix_fingerprint(matrix.copy())

    def test_decoded_view_flows_into_shared_memory(self):
        if not shm.shared_memory_available():
            pytest.skip("no usable shared memory on this platform")
        decoded, _ = wire.decode_matrix(
            wire.encode_matrix(np.arange(12.0).reshape(3, 4))
        )
        with shm.SharedMatrixArena() as arena:
            ref = arena.share(decoded)  # read-only input: the shm write is the only copy
            assert np.array_equal(shm.open_matrix(ref), decoded)

    def test_arena_accepts_fortran_order_without_intermediate(self):
        if not shm.shared_memory_available():
            pytest.skip("no usable shared memory on this platform")
        matrix = np.asfortranarray(np.arange(20.0).reshape(4, 5))
        with shm.SharedMatrixArena() as arena:
            assert np.array_equal(shm.open_matrix(arena.share(matrix)), matrix)

    def test_request_frame_carries_config(self):
        body = wire.encode_request(np.ones((3, 3)), {"num_clusters": 2, "prefix": 1})
        matrix, config = wire.decode_request(body)
        assert matrix.shape == (3, 3)
        assert config == {"num_clusters": 2, "prefix": 1}
        _matrix, empty = wire.decode_request(wire.encode_request(np.ones((3, 3))))
        assert empty == {}


class TestMalformedFrames:
    def test_truncated_payload_rejected(self):
        body = wire.encode_matrix(np.ones((4, 4)))
        with pytest.raises(WireFormatError, match="truncated"):
            wire.decode_matrix(body[:-8])

    def test_oversized_payload_rejected(self):
        body = wire.encode_matrix(np.ones((4, 4)))
        with pytest.raises(WireFormatError, match="oversized"):
            wire.decode_matrix(body + b"\x00" * 8)

    def test_bad_magic_version_and_header(self):
        body = wire.encode_matrix(np.ones((2, 2)))
        with pytest.raises(WireFormatError, match="magic"):
            wire.decode_matrix(b"XXXX" + body[4:])
        with pytest.raises(WireFormatError, match="version"):
            wire.decode_matrix(body[:4] + b"\x63" + body[5:])
        with pytest.raises(WireFormatError, match="shorter"):
            wire.decode_matrix(b"RPRM")
        with pytest.raises(WireFormatError, match="exceeds"):
            wire.decode_frame(body[:10] + b"\xff\xff" + body[12:])
        # header_len below the cap but past the end of the frame
        import struct

        patched = body[:8] + struct.pack("<I", len(body)) + body[12:]
        with pytest.raises(WireFormatError, match="truncated inside the header"):
            wire.decode_frame(patched)

    def test_hostile_headers_rejected(self):
        for header in (
            {"dtype": "<f8", "shape": "nope"},
            {"dtype": "<f8", "shape": [-1, 4]},
            {"dtype": "<f8", "shape": [2.5]},
            {"dtype": "<f8", "shape": [1] * 9},
            {"dtype": ">f8", "shape": [2, 2]},
            {"dtype": "O", "shape": [2, 2]},
            {"dtype": "<U8", "shape": [2, 2]},
            {"dtype": 12, "shape": [2, 2]},
            {"dtype": "<f8", "shape": [10**9, 10**9]},  # absurd size vs body
        ):
            with pytest.raises(WireFormatError):
                wire.decode_matrix(wire.encode_frame(header, b"\x00" * 32))

    def test_non_json_header_rejected(self):
        import struct

        prefix = struct.pack("<4sB3xI", b"RPRM", 1, 5)
        with pytest.raises(WireFormatError, match="JSON"):
            wire.decode_frame(prefix + b"{oops")

    def test_object_dtype_refused_on_encode(self):
        with pytest.raises(WireFormatError, match="dtype"):
            wire.encode_matrix(np.array([{"a": 1}], dtype=object))


class TestEnvelopeFrames:
    def test_round_trip_is_byte_identical(self):
        envelope = {
            "result": {
                "method": "tmfg-dbht",
                "config": {"prefix": 2},
                "labels": [2, 0, 1, 1, 0],
                "num_clusters": 3,
                "step_seconds": {"fit": 0.25},
                "extras": {},
            },
            "serving": {"batch_size": 3, "queue_seconds": 0.001},
        }
        decoded = wire.decode_envelope(wire.encode_envelope(envelope))
        assert json.dumps(decoded) == json.dumps(envelope)

    def test_none_labels_round_trip(self):
        envelope = {"result": {"method": "x", "labels": None}, "serving": {}}
        decoded = wire.decode_envelope(wire.encode_envelope(envelope))
        assert json.dumps(decoded) == json.dumps(envelope)

    def test_payload_without_dtype_marker_rejected(self):
        blob = wire.encode_frame({"envelope": {"result": {}}, "labels_dtype": None})
        with pytest.raises(WireFormatError):
            wire.decode_envelope(blob + b"\x00" * 8)


# ---------------------------------------------------------------------------
# Live-server integration
# ---------------------------------------------------------------------------


class TestBinaryTransportIntegration:
    def test_binary_and_json_requests_serve_identical_results(self, series):
        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                envelope_json = client.cluster(series)
                envelope_binary = client.cluster(series, binary=True)
            assert json.dumps(envelope_json["result"]) == json.dumps(
                envelope_binary["result"]
            )
        finally:
            handle.stop()

    def test_binary_submission_hits_the_json_cache_entry(self, series):
        """The fingerprint acceptance test: both transports of the same
        matrix address the same content-addressed cache entry."""
        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                client.cluster(series)  # JSON: fits and stores
                before = client.metrics()["cache"]
                client.cluster(series, binary=True)  # binary: must be a hit
                after = client.metrics()["cache"]
            assert after["hits"] == before["hits"] + 1
            assert after["stores"] == before["stores"] == 1
        finally:
            handle.stop()

    def test_binary_request_without_accept_gets_json_response(self, series):
        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                body = client.encode_cluster_body_binary(series)
                envelope = client.request(
                    "POST", "/cluster", body, {"Content-Type": WIRE_CONTENT_TYPE}
                )
            assert envelope["result"]["num_clusters"] == 3
        finally:
            handle.stop()

    def test_binary_config_overlay_and_float32_upcast(self, series):
        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                envelope = client.cluster(
                    series.astype(np.float32), config={"num_clusters": 2}, binary=True
                )
            assert envelope["result"]["num_clusters"] == 2
        finally:
            handle.stop()

    def test_malformed_binary_bodies_answer_400_not_500(self, series):
        _server, handle = _start_server()
        headers = {"Content-Type": WIRE_CONTENT_TYPE}
        try:
            with ServeClient(handle.host, handle.port) as client:
                good = client.encode_cluster_body_binary(series)
                for bad in (good[:-16], good + b"\x00" * 16, b"RPRM", b"garbage"):
                    with pytest.raises(ServerError) as excinfo:
                        client.request("POST", "/cluster", bad, headers)
                    assert excinfo.value.status == 400
                # NaN and 1-D payloads fail validation, not with a crash.
                nan = client.encode_cluster_body_binary(np.full((4, 4), np.nan))
                with pytest.raises(ServerError, match="NaN") as excinfo:
                    client.request("POST", "/cluster", nan, headers)
                assert excinfo.value.status == 400
                flat = wire.encode_request(np.arange(8.0))
                with pytest.raises(ServerError, match="2-D") as excinfo:
                    client.request("POST", "/cluster", flat, headers)
                assert excinfo.value.status == 400
                # The server is still healthy afterwards.
                assert client.healthz()["status"] == "ok"
        finally:
            handle.stop()

    def test_binary_disabled_answers_415_and_client_falls_back(self, series):
        _server, handle = _start_server(binary=False)
        try:
            with ServeClient(handle.host, handle.port) as client:
                body = client.encode_cluster_body_binary(series)
                with pytest.raises(ServerError) as excinfo:
                    client.request(
                        "POST", "/cluster", body, {"Content-Type": WIRE_CONTENT_TYPE}
                    )
                assert excinfo.value.status == 415
                # cluster(binary=True) notices the 415 once and renegotiates
                # down to JSON transparently — the call still succeeds.
                envelope = client.cluster(series, binary=True)
                assert envelope["result"]["num_clusters"] == 3
                assert client._server_accepts_binary is False
        finally:
            handle.stop()

    def test_reserved_config_fields_rejected_on_binary_route(self, series, tmp_path):
        _server, handle = _start_server()
        try:
            with ServeClient(handle.host, handle.port) as client:
                body = wire.encode_request(series, {"cache_dir": str(tmp_path / "evil")})
                with pytest.raises(ServerError, match="operator-controlled") as excinfo:
                    client.request(
                        "POST", "/cluster", body, {"Content-Type": WIRE_CONTENT_TYPE}
                    )
                assert excinfo.value.status == 400
        finally:
            handle.stop()
