"""End-to-end tests for the parallel DBHT (Algorithm 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dbht import dbht
from repro.core.tmfg import construct_tmfg
from repro.metrics.ari import adjusted_rand_index


class TestDBHT:
    @pytest.mark.parametrize("prefix", [1, 8])
    def test_produces_complete_monotone_dendrogram(self, small_matrices, prefix):
        similarity, dissimilarity = small_matrices
        tmfg = construct_tmfg(similarity, prefix=prefix)
        result = dbht(tmfg, similarity, dissimilarity)
        assert result.dendrogram.is_complete
        assert result.dendrogram.num_leaves == similarity.shape[0]
        assert result.dendrogram.heights_monotone()

    def test_requires_bubble_tree(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg = construct_tmfg(similarity, prefix=1, build_bubble_tree=False)
        with pytest.raises(ValueError):
            dbht(tmfg, similarity, dissimilarity)

    def test_rejects_mismatched_dissimilarity(self, small_matrices):
        similarity, _ = small_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        wrong = np.zeros((similarity.shape[0] + 1, similarity.shape[0] + 1))
        with pytest.raises(Exception):
            dbht(tmfg, similarity, wrong)

    def test_cut_produces_requested_number_of_clusters(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        result = dbht(tmfg, similarity, dissimilarity)
        for k in (2, 3, 5):
            labels = result.cut(k)
            assert len(np.unique(labels)) == k

    def test_recovers_ground_truth_on_easy_data(self, small_dataset, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        result = dbht(tmfg, similarity, dissimilarity)
        labels = result.cut(small_dataset.num_classes)
        assert adjusted_rand_index(small_dataset.labels, labels) > 0.6

    def test_step_seconds_cover_all_phases(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        result = dbht(tmfg, similarity, dissimilarity)
        assert set(result.step_seconds) == {"apsp", "bubble-tree", "hierarchy"}
        assert all(value >= 0 for value in result.step_seconds.values())

    def test_shortest_paths_use_dissimilarity_weights(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        result = dbht(tmfg, similarity, dissimilarity)
        # Direct edges of the TMFG: the shortest path is at most the edge length.
        for u, v, _ in tmfg.graph.edges():
            assert result.shortest_paths[u, v] <= dissimilarity[u, v] + 1e-9

    def test_tracker_accumulates_all_phases(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg = construct_tmfg(similarity, prefix=4)
        result = dbht(tmfg, similarity, dissimilarity)
        phase_names = {phase.name for phase in result.tracker.phases}
        assert {"tmfg", "apsp", "bubble-tree", "hierarchy"} <= phase_names

    def test_scipy_apsp_backend_gives_same_dendrogram(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg_a = construct_tmfg(similarity, prefix=4)
        tmfg_b = construct_tmfg(similarity, prefix=4)
        default = dbht(tmfg_a, similarity, dissimilarity, apsp_method="dijkstra")
        scipy_backend = dbht(tmfg_b, similarity, dissimilarity, apsp_method="scipy")
        np.testing.assert_allclose(
            default.shortest_paths, scipy_backend.shortest_paths, rtol=1e-9, atol=1e-9
        )
        np.testing.assert_array_equal(default.cut(5), scipy_backend.cut(5))

    def test_deterministic_for_fixed_input(self, small_matrices):
        similarity, dissimilarity = small_matrices
        tmfg_a = construct_tmfg(similarity, prefix=4)
        tmfg_b = construct_tmfg(similarity, prefix=4)
        result_a = dbht(tmfg_a, similarity, dissimilarity)
        result_b = dbht(tmfg_b, similarity, dissimilarity)
        np.testing.assert_array_equal(result_a.cut(4), result_b.cut(4))
