"""Tests for the filtered-graph edge-weight-sum metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.weighted_graph import WeightedGraph
from repro.metrics.edge_sum import edge_weight_sum, edge_weight_sum_ratio


@pytest.fixture
def weights():
    rng = np.random.default_rng(0)
    raw = rng.uniform(0.0, 1.0, size=(6, 6))
    matrix = (raw + raw.T) / 2
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestEdgeWeightSum:
    def test_from_graph(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 1.5)
        graph.add_edge(1, 2, 2.5)
        assert edge_weight_sum(graph) == pytest.approx(4.0)

    def test_from_edge_list_and_matrix(self, weights):
        edges = [(0, 1), (2, 3)]
        expected = weights[0, 1] + weights[2, 3]
        assert edge_weight_sum(edges, weights) == pytest.approx(expected)

    def test_edge_list_without_matrix_rejected(self):
        with pytest.raises(ValueError):
            edge_weight_sum([(0, 1)])

    def test_empty_graph_is_zero(self):
        assert edge_weight_sum(WeightedGraph(4)) == 0.0


class TestRatio:
    def test_identical_graphs_have_ratio_one(self, weights):
        graph = WeightedGraph.from_edge_list_and_matrix(6, [(0, 1), (1, 2)], weights)
        assert edge_weight_sum_ratio(graph, graph) == pytest.approx(1.0)

    def test_ratio_orders_graphs_by_weight(self, weights):
        heavy = WeightedGraph.from_edge_list_and_matrix(6, [(0, 1), (1, 2), (2, 3)], weights)
        light = WeightedGraph.from_edge_list_and_matrix(6, [(0, 1)], weights)
        assert edge_weight_sum_ratio(light, heavy) < 1.0
        assert edge_weight_sum_ratio(heavy, light) > 1.0

    def test_zero_reference_rejected(self):
        empty = WeightedGraph(4)
        other = WeightedGraph(4)
        other.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            edge_weight_sum_ratio(other, empty)

    def test_mixed_graph_and_edge_list(self, weights):
        graph = WeightedGraph.from_edge_list_and_matrix(6, [(0, 1), (1, 2)], weights)
        ratio = edge_weight_sum_ratio([(0, 1), (1, 2)], graph, weights)
        assert ratio == pytest.approx(1.0)
