"""Tests for the streaming pipeline, TMFG warm starts, and drift metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import tmfg_dbht
from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import correlation_matrix
from repro.datasets.stocks import generate_regime_switching_stream
from repro.streaming import StreamingPipeline, TMFGWarmStarter
from tests.conftest import random_similarity_matrix


@pytest.fixture(scope="module")
def regime_stream():
    return generate_regime_switching_stream(
        num_stocks=48, num_days=260, num_regimes=3, regime_length=90, seed=17
    )


class TestWarmStartTMFG:
    def test_full_replay_on_identical_matrix(self):
        similarity = random_similarity_matrix(30, seed=4)
        cold = construct_tmfg(similarity, prefix=1)
        warm = construct_tmfg(similarity, prefix=1, warm_start=cold.warm_start_hints())
        assert warm.warm_started
        assert warm.warm_rounds == warm.rounds == cold.rounds
        assert warm.insertion_order == cold.insertion_order
        assert warm.edges == cold.edges

    @pytest.mark.parametrize("prefix", [1, 4])
    def test_warm_build_identical_to_cold_on_shifted_window(self, prefix):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(40, 140))
        previous = construct_tmfg(np.corrcoef(data[:, :120]), prefix=prefix)
        shifted = np.corrcoef(data[:, 10:130])
        warm = construct_tmfg(shifted, prefix=prefix, warm_start=previous.warm_start_hints())
        cold = construct_tmfg(shifted, prefix=prefix)
        assert warm.insertion_order == cold.insertion_order
        assert warm.edges == cold.edges
        assert warm.initial_clique == cold.initial_clique
        assert sorted(warm.graph.edges()) == sorted(cold.graph.edges())

    def test_foreign_hints_fall_back_to_cold(self):
        hints = construct_tmfg(random_similarity_matrix(20, seed=1)).warm_start_hints()
        similarity = random_similarity_matrix(20, seed=2)
        warm = construct_tmfg(similarity, warm_start=hints)
        cold = construct_tmfg(similarity)
        assert not warm.warm_started
        assert warm.insertion_order == cold.insertion_order

    def test_hints_for_wrong_size_are_ignored(self):
        hints = construct_tmfg(random_similarity_matrix(12, seed=3)).warm_start_hints()
        similarity = random_similarity_matrix(18, seed=3)
        warm = construct_tmfg(similarity, warm_start=hints)
        cold = construct_tmfg(similarity)
        assert warm.warm_rounds == 0
        assert warm.insertion_order == cold.insertion_order

    def test_argmax_pair_matches_reference_selection(self):
        from repro.core.gains import GainTable
        from repro.core.tmfg import _select_batch

        for seed in range(10):
            similarity = random_similarity_matrix(14, seed=seed)
            # Duplicate entries to force exact gain ties.
            similarity[np.abs(similarity) < 0.3] = 0.5
            similarity = (similarity + similarity.T) / 2.0
            np.fill_diagonal(similarity, 1.0)
            table = GainTable(similarity, remaining=range(4, 14))
            table.add_faces(
                [frozenset({0, 1, 2}), frozenset({0, 1, 3}), frozenset({0, 2, 3}), frozenset({1, 2, 3})]
            )
            expected = _select_batch(table, prefix=1)[0]
            scanned = table.argmax_pair()
            assert (scanned.vertex, scanned.face, scanned.gain) == (
                expected.vertex,
                expected.face,
                expected.gain,
            )

    def test_warm_starter_aggregates_stats(self):
        starter = TMFGWarmStarter(enabled=True)
        similarity = random_similarity_matrix(16, seed=7)
        assert starter.hints() is None
        first = construct_tmfg(similarity, warm_start=starter.hints())
        starter.update(first)
        second = construct_tmfg(similarity, warm_start=starter.hints())
        starter.update(second)
        assert starter.stats.builds == 2
        assert starter.stats.warm_attempts == 1
        assert starter.stats.full_replays == 1
        assert starter.stats.full_replay_rate == 1.0
        assert starter.stats.round_replay_rate == 1.0
        disabled = TMFGWarmStarter(enabled=False)
        disabled.update(first)
        assert disabled.hints() is None


@pytest.mark.slow
class TestStreamingEquivalence:
    def test_warm_cut_identical_to_cold_recompute_over_20_ticks(self, regime_stream):
        """Acceptance: every warm tick's flat cut equals a cold from-scratch run."""
        pipeline = StreamingPipeline(
            regime_stream.returns,
            window=100,
            hop=8,
            num_clusters=5,
            warm_start=True,
        )
        ticks = list(pipeline.iter_ticks())
        assert len(ticks) >= 20
        for tick in ticks:
            window = regime_stream.returns[:, tick.start : tick.stop]
            cold = tmfg_dbht(correlation_matrix(window)).cut(5)
            np.testing.assert_array_equal(tick.labels, cold)

    def test_warm_and_cold_pipelines_emit_identical_cuts(self, regime_stream):
        kwargs = dict(window=90, hop=10, num_clusters=4)
        warm = StreamingPipeline(regime_stream.returns, warm_start=True, **kwargs).run()
        cold = StreamingPipeline(regime_stream.returns, warm_start=False, **kwargs).run()
        assert warm.num_ticks == cold.num_ticks >= 15
        for warm_tick, cold_tick in zip(warm.ticks, cold.ticks):
            np.testing.assert_array_equal(warm_tick.labels, cold_tick.labels)
        assert cold.warm_stats.warm_attempts == 0


class TestTickShortCircuit:
    """Ticks whose windowed correlation bytes are unchanged are reused."""

    @pytest.fixture()
    def tiled_returns(self):
        # Four consecutive windows with byte-identical content: window ==
        # hop == block width, and the stream is the block tiled 4 times.
        rng = np.random.default_rng(21)
        block = rng.normal(size=(16, 30))
        return np.tile(block, (1, 4))

    def _pipeline(self, returns, cache: bool):
        from repro.api.config import ClusteringConfig

        config = ClusteringConfig(
            num_clusters=3, warm_start=False, cache=cache
        )
        return StreamingPipeline(returns, window=30, hop=30, config=config)

    def test_unchanged_windows_are_reused(self, tiled_returns):
        from repro.cache import clear_result_caches

        clear_result_caches()
        pipeline = self._pipeline(tiled_returns, cache=True)
        result = pipeline.run()
        assert result.num_ticks == 4
        assert not result.ticks[0].reused
        assert all(tick.reused for tick in result.ticks[1:])
        assert result.reused_ticks == 3
        for tick in result.ticks[1:]:
            np.testing.assert_array_equal(tick.labels, result.ticks[0].labels)
            assert tick.drift_ari == pytest.approx(1.0)
            # Reused ticks skip the fit: only similarity + total are timed.
            assert set(tick.step_seconds) == {"similarity", "total"}
            assert tick.to_cluster_result(pipeline.config).extras["reused"] is True

    def test_warm_mode_short_circuits_identical_windows(self, tiled_returns):
        # Regression: the fingerprint used to be taken over the derived
        # correlation, which in warm mode is path-dependent (incremental
        # sums drift ~1e-12), so the short-circuit never fired in the
        # stream CLI's default warm configuration.  Keying on the window's
        # raw bytes makes identical windows reuse in both modes.
        from repro.api.config import ClusteringConfig
        from repro.cache import clear_result_caches

        clear_result_caches()
        config = ClusteringConfig(num_clusters=3, warm_start=True, cache=True)
        result = StreamingPipeline(
            tiled_returns, window=30, hop=30, config=config
        ).run()
        assert result.num_ticks == 4
        assert result.reused_ticks == 3
        for tick in result.ticks[1:]:
            np.testing.assert_array_equal(tick.labels, result.ticks[0].labels)

    def test_short_circuit_requires_cache_knob(self, tiled_returns):
        result = self._pipeline(tiled_returns, cache=False).run()
        assert result.reused_ticks == 0
        assert all(not tick.reused for tick in result.ticks)
        # Identical windows still cluster identically, just recomputed.
        for tick in result.ticks[1:]:
            np.testing.assert_array_equal(tick.labels, result.ticks[0].labels)

    def test_reused_labels_are_private_copies(self, tiled_returns):
        from repro.cache import clear_result_caches

        clear_result_caches()
        ticks = list(self._pipeline(tiled_returns, cache=True).iter_ticks())
        ticks[1].labels[:] = -1
        assert np.all(ticks[2].labels >= 0)


class TestStreamingPipeline:
    def test_tick_geometry_and_metadata(self, regime_stream):
        pipeline = StreamingPipeline(
            regime_stream.returns, window=120, hop=30, num_clusters=4
        )
        result = pipeline.run()
        assert result.num_ticks == pipeline.num_ticks == 1 + (260 - 120) // 30
        for index, tick in enumerate(result.ticks):
            assert tick.tick == index
            assert tick.stop - tick.start == 120
            assert tick.start == index * 30
            assert set(tick.step_seconds) == {
                "similarity",
                "tmfg",
                "apsp",
                "bubble-tree",
                "hierarchy",
                "total",
            }
            assert tick.labels.shape == (48,)
        assert result.ticks[0].drift_ari is None
        assert all(t.drift_ari is not None for t in result.ticks[1:])
        assert result.mean_tick_seconds() > 0.0

    def test_drift_metrics_detect_regime_change(self, regime_stream):
        """Drift ARI dips when the window crosses a regime boundary."""
        pipeline = StreamingPipeline(
            regime_stream.returns, window=60, hop=30, num_clusters=5
        )
        result = pipeline.run()
        drifts = [t.drift_ari for t in result.ticks[1:]]
        # Ticks fully inside one regime agree with each other more than
        # ticks straddling a boundary; the mean drift is therefore bounded
        # away from both 0 (no structure) and 1 (no drift at all).
        assert 0.0 < np.mean(drifts) < 1.0
        assert result.mean_drift_ari() == pytest.approx(np.mean(drifts))
        assert result.mean_drift_ami() is not None

    def test_max_ticks_caps_the_run(self, regime_stream):
        pipeline = StreamingPipeline(
            regime_stream.returns, window=100, hop=10, num_clusters=4, max_ticks=3
        )
        result = pipeline.run()
        assert result.num_ticks == pipeline.num_ticks == 3

    def test_labels_property_and_warm_stats(self, regime_stream):
        result = StreamingPipeline(
            regime_stream.returns, window=150, hop=50, num_clusters=4
        ).run()
        np.testing.assert_array_equal(result.labels, result.ticks[-1].labels)
        assert result.warm_stats.builds == result.num_ticks

    def test_kernel_choice_does_not_change_cuts(self, regime_stream):
        kwargs = dict(window=120, hop=60, num_clusters=4)
        numpy_run = StreamingPipeline(
            regime_stream.returns, kernel="numpy", **kwargs
        ).run()
        python_run = StreamingPipeline(
            regime_stream.returns, kernel="python", **kwargs
        ).run()
        for a, b in zip(numpy_run.ticks, python_run.ticks):
            np.testing.assert_array_equal(a.labels, b.labels)

    def test_invalid_parameters_rejected(self, regime_stream):
        returns = regime_stream.returns
        with pytest.raises(ValueError):
            StreamingPipeline(returns, window=1000)
        with pytest.raises(ValueError):
            StreamingPipeline(returns, window=50, hop=0)
        with pytest.raises(ValueError):
            StreamingPipeline(returns, window=1)
        with pytest.raises(ValueError):
            StreamingPipeline(returns[:2], window=50)
        with pytest.raises(ValueError):
            StreamingPipeline(returns, window=50, num_clusters=0)
        with pytest.raises(ValueError):
            StreamingPipeline(returns, window=50, max_ticks=0)
        with pytest.raises(ValueError):
            StreamingPipeline(np.zeros(5), window=2)
