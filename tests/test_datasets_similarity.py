"""Tests for similarity / dissimilarity measures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.similarity import (
    correlation_matrix,
    correlation_to_dissimilarity,
    detrended_log_returns,
    euclidean_distance_matrix,
    log_returns,
    similarity_and_dissimilarity,
)


class TestCorrelation:
    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(10, 50))
        np.testing.assert_allclose(
            correlation_matrix(data), np.corrcoef(data), atol=1e-10
        )

    def test_unit_diagonal(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(6, 30))
        assert np.allclose(np.diag(correlation_matrix(data)), 1.0)

    def test_constant_row_gives_zero_correlation(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(5, 20))
        data[2] = 3.0
        correlation = correlation_matrix(data)
        assert np.all(np.isfinite(correlation))
        assert np.allclose(correlation[2, [0, 1, 3, 4]], 0.0)
        assert correlation[2, 2] == 1.0

    def test_perfectly_correlated_rows(self):
        base = np.linspace(0, 1, 40)
        data = np.vstack([base, 2 * base + 1, -base])
        correlation = correlation_matrix(data)
        assert correlation[0, 1] == pytest.approx(1.0)
        assert correlation[0, 2] == pytest.approx(-1.0)

    def test_rejects_one_dimensional_input(self):
        with pytest.raises(ValueError):
            correlation_matrix(np.arange(10))


class TestDissimilarity:
    def test_formula(self):
        correlation = np.array([[1.0, 0.5], [0.5, 1.0]])
        expected = np.sqrt(2 * (1 - 0.5))
        dissimilarity = correlation_to_dissimilarity(correlation)
        assert dissimilarity[0, 1] == pytest.approx(expected)
        assert dissimilarity[0, 0] == 0.0

    def test_range(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(8, 60))
        _, dissimilarity = similarity_and_dissimilarity(data)
        assert np.all(dissimilarity >= 0.0)
        assert np.all(dissimilarity <= 2.0 + 1e-9)

    def test_monotone_decreasing_in_correlation(self):
        assert correlation_to_dissimilarity(np.array([[1.0, 0.9], [0.9, 1.0]]))[0, 1] < (
            correlation_to_dissimilarity(np.array([[1.0, 0.1], [0.1, 1.0]]))[0, 1]
        )

    def test_equals_euclidean_distance_for_normalized_rows(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(6, 100))
        centered = data - data.mean(axis=1, keepdims=True)
        normalized = centered / np.linalg.norm(centered, axis=1, keepdims=True)
        similarity, dissimilarity = similarity_and_dissimilarity(normalized)
        euclidean = euclidean_distance_matrix(normalized)
        np.testing.assert_allclose(dissimilarity, euclidean, atol=1e-7)


class TestReturns:
    def test_log_returns_shape(self):
        prices = np.abs(np.random.default_rng(0).normal(loc=50, scale=1, size=(4, 30))) + 1
        returns = log_returns(prices)
        assert returns.shape == (4, 29)

    def test_log_returns_of_exponential_growth(self):
        prices = np.exp(np.arange(10))[None, :] * np.ones((2, 1))
        returns = log_returns(prices)
        np.testing.assert_allclose(returns, 1.0)

    def test_non_positive_prices_rejected(self):
        with pytest.raises(ValueError):
            log_returns(np.array([[1.0, 0.0, 2.0]]))

    def test_single_day_rejected(self):
        with pytest.raises(ValueError):
            log_returns(np.array([[1.0]]))

    def test_detrended_returns_have_zero_cross_sectional_mean(self):
        rng = np.random.default_rng(5)
        prices = np.exp(np.cumsum(rng.normal(0, 0.01, size=(10, 50)), axis=1)) * 100
        detrended = detrended_log_returns(prices)
        np.testing.assert_allclose(detrended.mean(axis=0), 0.0, atol=1e-12)


class TestEuclidean:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(7, 5))
        distances = euclidean_distance_matrix(data)
        for i in range(7):
            for j in range(7):
                assert distances[i, j] == pytest.approx(
                    np.linalg.norm(data[i] - data[j]), abs=1e-6
                )
