"""Tests for ASCII dendrogram rendering."""

from __future__ import annotations

import pytest

from repro.dendrogram.node import Dendrogram
from repro.dendrogram.render import render_cluster_summary, render_tree


@pytest.fixture
def tree():
    dendrogram = Dendrogram(4)
    a = dendrogram.merge(0, 1, height=1.0)
    b = dendrogram.merge(2, 3, height=2.0)
    dendrogram.merge(a, b, height=3.0)
    return dendrogram


class TestRenderTree:
    def test_contains_all_leaves(self, tree):
        text = render_tree(tree)
        for leaf in range(4):
            assert f"leaf {leaf}" in text

    def test_shows_heights(self, tree):
        text = render_tree(tree)
        assert "height 3" in text
        assert "height 1" in text

    def test_hide_heights(self, tree):
        assert "height" not in render_tree(tree, show_heights=False)

    def test_leaf_names(self, tree):
        text = render_tree(tree, leaf_names=["a", "b", "c", "d"])
        assert "a" in text and "d" in text
        assert "leaf 0" not in text

    def test_wrong_name_count_rejected(self, tree):
        with pytest.raises(ValueError):
            render_tree(tree, leaf_names=["only", "two"])

    def test_max_depth_truncates(self, tree):
        text = render_tree(tree, max_depth=1)
        assert "[2 leaves]" in text
        assert "leaf 0" not in text

    def test_incomplete_rejected(self):
        with pytest.raises(ValueError):
            render_tree(Dendrogram(3))

    def test_line_count_matches_node_count(self, tree):
        text = render_tree(tree)
        assert len(text.splitlines()) == tree.num_nodes


class TestClusterSummary:
    def test_one_line_per_cluster(self, tree):
        text = render_cluster_summary(tree, 2)
        assert len(text.splitlines()) == 2
        assert "2 members" in text

    def test_member_truncation(self, tree):
        text = render_cluster_summary(tree, 1, max_members=2)
        assert "..." in text

    def test_leaf_names_used(self, tree):
        text = render_cluster_summary(tree, 4, leaf_names=["w", "x", "y", "z"])
        assert "w" in text and "z" in text
