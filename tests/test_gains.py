"""Tests for the TMFG gain table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gains import GainTable, RescanGainTable
from repro.graph.faces import triangle_key


@pytest.fixture
def similarity():
    rng = np.random.default_rng(3)
    raw = rng.uniform(0.0, 1.0, size=(10, 10))
    matrix = (raw + raw.T) / 2.0
    np.fill_diagonal(matrix, 1.0)
    return matrix


def brute_force_best(similarity, face, remaining):
    best = None
    for vertex in remaining:
        gain = sum(similarity[corner, vertex] for corner in face)
        if best is None or gain > best[0]:
            best = (gain, vertex)
    return best


class TestGainTable:
    def test_best_matches_brute_force(self, similarity):
        remaining = [4, 5, 6, 7, 8, 9]
        table = GainTable(similarity, remaining)
        face = triangle_key(0, 1, 2)
        table.add_face(face)
        gain, vertex = table.best_for_face(face)
        expected_gain, expected_vertex = brute_force_best(similarity, face, remaining)
        assert gain == pytest.approx(expected_gain)
        assert vertex == expected_vertex

    def test_duplicate_face_rejected(self, similarity):
        table = GainTable(similarity, [4, 5])
        face = triangle_key(0, 1, 2)
        table.add_face(face)
        with pytest.raises(ValueError):
            table.add_face(face)

    def test_remove_vertices_refreshes_affected_faces(self, similarity):
        remaining = [4, 5, 6, 7]
        table = GainTable(similarity, remaining)
        faces = [triangle_key(0, 1, 2), triangle_key(1, 2, 3)]
        for face in faces:
            table.add_face(face)
        _, best_vertex = table.best_for_face(faces[0])
        refreshed = table.remove_vertices([best_vertex])
        assert all(face in faces for face in refreshed)
        for face in faces:
            gain, vertex = table.best_for_face(face)
            expected = brute_force_best(
                similarity, face, [v for v in remaining if v != best_vertex]
            )
            assert vertex == expected[1]
            assert gain == pytest.approx(expected[0])

    def test_remove_unknown_vertex_rejected(self, similarity):
        table = GainTable(similarity, [4, 5])
        with pytest.raises(ValueError):
            table.remove_vertices([0])

    def test_exhausted_table_reports_none(self, similarity):
        table = GainTable(similarity, [4])
        face = triangle_key(0, 1, 2)
        table.add_face(face)
        table.remove_vertices([4])
        gain, vertex = table.best_for_face(face)
        assert vertex is None
        assert gain == float("-inf")
        assert table.best_pairs() == []

    def test_remove_face_then_vertex_does_not_refresh_it(self, similarity):
        table = GainTable(similarity, [4, 5])
        face = triangle_key(0, 1, 2)
        table.add_face(face)
        _, best_vertex = table.best_for_face(face)
        table.remove_face(face)
        refreshed = table.remove_vertices([best_vertex])
        assert face not in refreshed

    def test_best_pairs_lists_every_active_face(self, similarity):
        table = GainTable(similarity, [4, 5, 6])
        faces = [triangle_key(0, 1, 2), triangle_key(0, 1, 3), triangle_key(1, 2, 3)]
        for face in faces:
            table.add_face(face)
        pairs = table.best_pairs()
        assert {pair.face for pair in pairs} == set(faces)

    def test_num_remaining_tracks_removals(self, similarity):
        table = GainTable(similarity, [4, 5, 6])
        assert table.num_remaining == 3
        table.add_face(triangle_key(0, 1, 2))
        table.remove_vertices([5])
        assert table.num_remaining == 2
        assert not table.is_remaining(5)
        assert table.is_remaining(6)


class TestRescanGainTable:
    def test_produces_same_state_as_optimized_table(self, similarity):
        remaining = [4, 5, 6, 7, 8, 9]
        fast = GainTable(similarity, list(remaining))
        slow = RescanGainTable(similarity, list(remaining))
        faces = [triangle_key(0, 1, 2), triangle_key(0, 2, 3), triangle_key(1, 2, 3)]
        for face in faces:
            fast.add_face(face)
            slow.add_face(face)
        fast.remove_vertices([7, 8])
        slow.remove_vertices([7, 8])
        for face in faces:
            assert fast.best_for_face(face)[1] == slow.best_for_face(face)[1]
            assert fast.best_for_face(face)[0] == pytest.approx(slow.best_for_face(face)[0])

    def test_rescan_recomputes_more(self, similarity):
        remaining = [4, 5, 6, 7, 8, 9]
        fast = GainTable(similarity, list(remaining))
        slow = RescanGainTable(similarity, list(remaining))
        faces = [triangle_key(0, 1, 2), triangle_key(0, 2, 3), triangle_key(1, 2, 3)]
        for face in faces:
            fast.add_face(face)
            slow.add_face(face)
        # Remove a vertex that is the best of at most one face; the rescan
        # variant still touches every face whose best vertex vanished, and
        # both end in the same state.
        fast.remove_vertices([9])
        slow.remove_vertices([9])
        assert slow.recompute_count >= fast.recompute_count
