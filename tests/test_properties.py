"""Property-based tests (hypothesis) on the core data structures and invariants.

The TMFG and DBHT properties are parametrized over the ``kernel``
(``python``/``numpy`` hot loops) and, for the DBHT pipeline, over the
serial/process ``backend`` fixture, so both the bulk-numpy gain updates and
the picklable process-pool APSP path are covered by the invariants.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.direction import compute_directions, compute_directions_bfs
from repro.core.dbht import dbht
from repro.core.tmfg import construct_tmfg
from repro.dendrogram.cut import cut_k
from repro.graph.planarity import is_planar
from repro.metrics.ari import adjusted_rand_index
from repro.parallel.kernels import KERNEL_NAMES


def similarity_matrices(min_size=5, max_size=24):
    """Strategy producing random symmetric similarity matrices."""

    def build(args):
        n, seed = args
        rng = np.random.default_rng(seed)
        raw = rng.uniform(-1.0, 1.0, size=(n, n))
        matrix = (raw + raw.T) / 2.0
        np.fill_diagonal(matrix, 1.0)
        return matrix

    return st.tuples(
        st.integers(min_value=min_size, max_value=max_size),
        st.integers(min_value=0, max_value=10_000),
    ).map(build)


def _dissimilarity_from(similarity: np.ndarray) -> np.ndarray:
    dissimilarity = similarity.max() - similarity
    np.fill_diagonal(dissimilarity, 0.0)
    return dissimilarity


class TestTMFGProperties:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @settings(max_examples=25, deadline=None)
    @given(similarity_matrices(), st.integers(min_value=1, max_value=12))
    def test_tmfg_is_always_maximal_planar(self, kernel, similarity, prefix):
        n = similarity.shape[0]
        result = construct_tmfg(
            similarity, prefix=prefix, build_bubble_tree=False, kernel=kernel
        )
        assert result.graph.num_edges == 3 * n - 6
        assert is_planar(result.graph)

    @settings(max_examples=15, deadline=None)
    @given(similarity_matrices(min_size=6, max_size=20), st.integers(min_value=1, max_value=8))
    def test_warm_replay_of_perturbed_matrix_matches_cold(self, similarity, prefix):
        """Warm-started builds are identical to cold builds, hit or miss."""
        rng = np.random.default_rng(int(similarity[0, 1] * 1e6) % (2**32))
        noise = rng.normal(0.0, 0.05, size=similarity.shape)
        perturbed = similarity + (noise + noise.T) / 2.0
        np.fill_diagonal(perturbed, 1.0)
        hints = construct_tmfg(similarity, prefix=prefix).warm_start_hints()
        warm = construct_tmfg(perturbed, prefix=prefix, warm_start=hints)
        cold = construct_tmfg(perturbed, prefix=prefix)
        assert warm.insertion_order == cold.insertion_order
        assert warm.edges == cold.edges
        assert warm.round_sizes == cold.round_sizes

    @settings(max_examples=15, deadline=None)
    @given(similarity_matrices(min_size=6, max_size=20), st.integers(min_value=2, max_value=8))
    def test_batched_tmfg_keeps_comparable_weight(self, similarity, prefix):
        sequential = construct_tmfg(similarity, prefix=1, build_bubble_tree=False)
        batched = construct_tmfg(similarity, prefix=prefix, build_bubble_tree=False)
        sequential_sum = sequential.graph.edge_weight_sum()
        batched_sum = batched.graph.edge_weight_sum()
        absolute_scale = sum(abs(w) for _, _, w in sequential.graph.edges())
        if absolute_scale < 1e-9:
            return
        # With signed weights the sum can nearly cancel, making the plain
        # batched/sequential *ratio* arbitrarily ill-conditioned, so the
        # band is stated as a difference bounded by the edge-weight scale.
        # On positive matrices (absolute_scale == sequential_sum) this is
        # the 0.25 <= ratio <= 1.75 band; empirically the worst case over
        # thousands of adversarial matrices stays under 0.4.
        assert abs(batched_sum - sequential_sum) <= 0.75 * absolute_scale

    @settings(max_examples=20, deadline=None)
    @given(similarity_matrices(), st.integers(min_value=1, max_value=10))
    def test_bubble_tree_invariants_always_hold(self, similarity, prefix):
        result = construct_tmfg(similarity, prefix=prefix, build_bubble_tree=True)
        result.bubble_tree.check_invariants()
        assert result.bubble_tree.num_bubbles == similarity.shape[0] - 3

    @settings(max_examples=15, deadline=None)
    @given(similarity_matrices(min_size=6, max_size=18), st.integers(min_value=1, max_value=6))
    def test_direction_algorithms_always_agree(self, similarity, prefix):
        result = construct_tmfg(similarity, prefix=prefix, build_bubble_tree=True)
        fast = compute_directions(result.bubble_tree, result.graph)
        slow = compute_directions_bfs(result.bubble_tree, result.graph)
        assert fast.towards_child == slow.towards_child


class TestDBHTProperties:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    @given(similarity_matrices(min_size=8, max_size=20), st.integers(min_value=1, max_value=6))
    def test_dendrogram_is_complete_and_monotone(self, kernel, backend, similarity, prefix):
        dissimilarity = _dissimilarity_from(similarity)
        tmfg = construct_tmfg(similarity, prefix=prefix, kernel=kernel)
        result = dbht(tmfg, similarity, dissimilarity, backend=backend, kernel=kernel)
        assert result.dendrogram.is_complete
        assert result.dendrogram.heights_monotone()

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        similarity_matrices(min_size=8, max_size=16),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=6),
    )
    def test_cut_produces_exactly_k_clusters(self, similarity, prefix, k):
        dissimilarity = _dissimilarity_from(similarity)
        tmfg = construct_tmfg(similarity, prefix=prefix)
        result = dbht(tmfg, similarity, dissimilarity)
        labels = result.cut(k)
        assert len(np.unique(labels)) == min(k, similarity.shape[0])


class TestMetricProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=50),
        st.integers(min_value=0, max_value=1000),
    )
    def test_relabeling_does_not_change_ari(self, labels, seed):
        rng = np.random.default_rng(seed)
        other = rng.integers(0, 4, size=len(labels))
        permutation = rng.permutation(6)
        relabeled = [int(permutation[v]) for v in labels]
        assert adjusted_rand_index(labels, other) == pytest.approx(
            adjusted_rand_index(relabeled, other)
        )

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=50))
    def test_ari_symmetry(self, labels):
        reversed_labels = list(reversed(labels))
        assert adjusted_rand_index(labels, reversed_labels) == pytest.approx(
            adjusted_rand_index(reversed_labels, labels)
        )


class TestDendrogramCutProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10_000))
    def test_random_dendrogram_cut_partitions_leaves(self, n, seed):
        from repro.dendrogram.node import Dendrogram

        rng = np.random.default_rng(seed)
        dendrogram = Dendrogram(n)
        active = list(range(n))
        height = 0.0
        while len(active) > 1:
            i, j = sorted(rng.choice(len(active), size=2, replace=False))
            a, b = active[j], active[i]
            height += float(rng.uniform(0.0, 1.0))
            new = dendrogram.merge(a, b, height=height)
            active = [x for x in active if x not in (a, b)] + [new]
        for k in (1, 2, n // 2 or 1, n):
            labels = cut_k(dendrogram, k)
            assert len(labels) == n
            assert len(np.unique(labels)) == min(k, n)
            assert np.all(labels >= 0)
