"""Tests for k-means and its initialisation schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.kmeans import kmeans, kmeans_plus_plus, scalable_kmeans_init
from repro.datasets.synthetic import make_gaussian_blobs
from repro.metrics.ari import adjusted_rand_index


@pytest.fixture(scope="module")
def blobs():
    return make_gaussian_blobs(
        num_objects=150, num_features=4, num_classes=3, separation=6.0, noise=0.8, seed=2
    )


class TestInitialisation:
    def test_kmeans_plus_plus_returns_k_centers(self, blobs):
        rng = np.random.default_rng(0)
        centers = kmeans_plus_plus(blobs.data, 3, rng)
        assert centers.shape == (3, blobs.data.shape[1])

    def test_kmeans_plus_plus_centers_are_data_points(self, blobs):
        rng = np.random.default_rng(1)
        centers = kmeans_plus_plus(blobs.data, 5, rng)
        for center in centers:
            assert np.any(np.all(np.isclose(blobs.data, center), axis=1))

    def test_kmeans_plus_plus_too_many_clusters_rejected(self, blobs):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            kmeans_plus_plus(blobs.data, blobs.data.shape[0] + 1, rng)

    def test_scalable_init_returns_k_centers(self, blobs):
        rng = np.random.default_rng(3)
        centers = scalable_kmeans_init(blobs.data, 3, rng)
        assert centers.shape == (3, blobs.data.shape[1])

    def test_scalable_init_handles_duplicate_points(self):
        data = np.zeros((20, 2))
        rng = np.random.default_rng(0)
        centers = scalable_kmeans_init(data, 2, rng)
        assert centers.shape == (2, 2)


class TestKMeans:
    def test_recovers_well_separated_blobs(self, blobs):
        result = kmeans(blobs.data, 3, seed=0, num_restarts=3)
        assert adjusted_rand_index(blobs.labels, result.labels) > 0.95

    def test_scalable_init_recovers_blobs(self, blobs):
        result = kmeans(blobs.data, 3, init="k-means||", seed=0, num_restarts=3)
        assert adjusted_rand_index(blobs.labels, result.labels) > 0.95

    def test_inertia_decreases_with_more_clusters(self, blobs):
        few = kmeans(blobs.data, 2, seed=1, num_restarts=2)
        many = kmeans(blobs.data, 6, seed=1, num_restarts=2)
        assert many.inertia < few.inertia

    def test_labels_cover_requested_clusters(self, blobs):
        result = kmeans(blobs.data, 4, seed=5)
        assert set(np.unique(result.labels)) <= set(range(4))

    def test_deterministic_for_fixed_seed(self, blobs):
        first = kmeans(blobs.data, 3, seed=42)
        second = kmeans(blobs.data, 3, seed=42)
        np.testing.assert_array_equal(first.labels, second.labels)

    def test_single_cluster(self, blobs):
        result = kmeans(blobs.data, 1, seed=0)
        assert np.all(result.labels == 0)
        expected_center = blobs.data.mean(axis=0)
        np.testing.assert_allclose(result.centers[0], expected_center, rtol=1e-6)

    def test_invalid_parameters_rejected(self, blobs):
        with pytest.raises(ValueError):
            kmeans(blobs.data, 0)
        with pytest.raises(ValueError):
            kmeans(blobs.data, 2, init="bogus")
        with pytest.raises(ValueError):
            kmeans(blobs.data[0], 2)

    def test_converged_flag_set_on_easy_data(self, blobs):
        result = kmeans(blobs.data, 3, seed=0, max_iterations=300)
        assert result.converged
        assert result.iterations <= 300
