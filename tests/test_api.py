"""Tests for the unified estimator API (config, registry, estimators, batch)."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    ClusteringConfig,
    ClusterResult,
    NotFittedError,
    TMFGClusterer,
    available_estimators,
    cluster_many,
    make_estimator,
    register_method,
)
from repro.api.estimators import ClusteringEstimator
from repro.core.pipeline import tmfg_dbht
from repro.datasets.similarity import similarity_and_dissimilarity

GOLDEN_DIR = Path(__file__).parent / "golden"


class TestClusteringConfig:
    def test_defaults_validate(self):
        config = ClusteringConfig()
        assert config.method == "tmfg-dbht"
        assert config.prefix == 1

    @pytest.mark.parametrize(
        "changes",
        [
            {"prefix": 0},
            {"num_clusters": 0},
            {"apsp_method": "bellman-ford"},
            {"kernel": "fortran"},
            {"backend": "mpi"},
            {"workers": 2},  # workers without a parallel backend
            {"backend": "thread", "workers": 0},
            {"linkage": "ward"},
            {"num_restarts": 0},
            {"spectral_neighbors": 0},
            {"method": ""},
            {"landmarks": 8},  # landmarks without apsp_method="landmark"
            {"apsp_method": "landmark", "landmarks": 1},
        ],
    )
    def test_invalid_values_rejected(self, changes):
        with pytest.raises(ValueError):
            ClusteringConfig(**changes)

    def test_apsp_method_resolves_against_live_registry(self):
        """Registered custom APSP methods validate; the error lists live ids."""
        from repro.graph.shortest_paths import _APSP_DISPATCH, register_apsp_method

        with pytest.raises(ValueError) as excinfo:
            ClusteringConfig(apsp_method="my-custom-apsp")
        for name in ("dijkstra", "incremental", "landmark"):
            assert name in str(excinfo.value)
        register_apsp_method("my-custom-apsp", lambda g, backend=None, kernel=None: None)
        try:
            assert ClusteringConfig(apsp_method="my-custom-apsp").apsp_method == (
                "my-custom-apsp"
            )
        finally:
            _APSP_DISPATCH.pop("my-custom-apsp", None)

    def test_landmark_knob_validates(self):
        config = ClusteringConfig(apsp_method="landmark", landmarks=16)
        assert config.landmarks == 16
        assert ClusteringConfig(apsp_method="landmark").landmarks is None

    def test_frozen(self):
        config = ClusteringConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.prefix = 5

    def test_replace_revalidates(self):
        config = ClusteringConfig()
        assert config.replace(prefix=7).prefix == 7
        with pytest.raises(ValueError):
            config.replace(prefix=-1)

    def test_dict_round_trip_is_lossless(self):
        config = ClusteringConfig(
            method="hac",
            num_clusters=5,
            prefix=12,
            apsp_method="floyd",
            kernel="python",
            backend="thread",
            workers=3,
            warm_start=True,
            precomputed=True,
            linkage="average",
            seed=9,
            num_restarts=2,
            spectral_neighbors=7,
        )
        assert ClusteringConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip_is_lossless(self):
        config = ClusteringConfig(prefix=3, kernel="numpy", num_clusters=4)
        restored = ClusteringConfig.from_json(config.to_json())
        assert restored == config
        # and the JSON itself is plain data
        payload = json.loads(config.to_json())
        assert payload["prefix"] == 3 and payload["num_clusters"] == 4

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown ClusteringConfig keys"):
            ClusteringConfig.from_dict({"prefix": 2, "warp_drive": True})

    def test_merged_overlays_partial_payload(self):
        base = ClusteringConfig(prefix=10, warm_start=True)
        merged = base.merged({"num_clusters": 8})
        assert merged.num_clusters == 8
        assert merged.prefix == 10 and merged.warm_start is True
        with pytest.raises(ValueError, match="unknown ClusteringConfig keys"):
            base.merged({"warp_drive": True})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError):
            ClusteringConfig.from_json("[1, 2, 3]")

    def test_open_backend_serial_is_none(self):
        assert ClusteringConfig().open_backend() is None
        assert ClusteringConfig(backend="serial").open_backend() is None

    def test_open_backend_thread_pool(self):
        backend = ClusteringConfig(backend="thread", workers=2).open_backend()
        try:
            assert backend.num_workers == 2
            assert backend.map(lambda x: x + 1, [1, 2]) == [2, 3]
        finally:
            backend.close()


class TestRegistry:
    def test_resolves_at_least_six_ids(self):
        ids = available_estimators()
        assert len(ids) >= 6
        for required in (
            "tmfg-dbht",
            "pmfg-dbht",
            "classic-dbht",
            "hac",
            "kmeans",
            "spectral",
        ):
            assert required in ids

    def test_unknown_id_raises_with_valid_ids(self):
        with pytest.raises(ValueError) as excinfo:
            make_estimator("does-not-exist")
        message = str(excinfo.value)
        assert "does-not-exist" in message
        for valid in available_estimators():
            assert valid in message

    def test_ids_are_case_insensitive(self):
        assert isinstance(make_estimator("TMFG-DBHT"), TMFGClusterer)

    def test_paper_aliases_resolve(self):
        assert make_estimator("comp").config.linkage == "complete"
        assert make_estimator("avg").config.linkage == "average"
        assert make_estimator("seq-tdbht").config.method == "classic-dbht"

    def test_pinned_fields_win_over_config(self):
        config = ClusteringConfig(linkage="average")
        assert make_estimator("hac-complete", config).config.linkage == "complete"

    def test_custom_method_registers(self):
        class Constant(ClusteringEstimator):
            method_id = "constant"

            def _fit(self, data, similarity, dissimilarity, backend, **fit_params):
                return ClusterResult(
                    method=self.method_id,
                    config=self.config,
                    labels=np.zeros(len(data), dtype=int),
                )

        register_method("constant", Constant)
        try:
            labels = make_estimator("constant").fit_predict(np.zeros((5, 3)))
            assert labels.tolist() == [0, 0, 0, 0, 0]
        finally:
            from repro.api import estimators

            estimators._REGISTRY.pop("constant", None)


class TestEstimatorContract:
    @pytest.fixture(scope="class")
    def dataset(self, small_dataset):
        return small_dataset

    @pytest.mark.parametrize(
        "method_id",
        ["tmfg-dbht", "classic-dbht", "hac-complete", "hac-average", "kmeans", "spectral"],
    )
    def test_fit_predict_equals_fit_labels(self, dataset, method_id):
        config = ClusteringConfig(num_clusters=dataset.num_classes, prefix=2)
        via_fit = make_estimator(method_id, config).fit(dataset.data).labels_
        via_fit_predict = make_estimator(method_id, config).fit_predict(dataset.data)
        np.testing.assert_array_equal(via_fit, via_fit_predict)

    @pytest.mark.parametrize(
        "method_id",
        ["tmfg-dbht", "classic-dbht", "hac-complete", "kmeans", "spectral"],
    )
    def test_refit_is_idempotent(self, dataset, method_id):
        config = ClusteringConfig(num_clusters=dataset.num_classes, prefix=2)
        estimator = make_estimator(method_id, config)
        first = estimator.fit(dataset.data).labels_.copy()
        second = estimator.fit(dataset.data).labels_
        np.testing.assert_array_equal(first, second)

    def test_config_is_immutable_after_fit(self, dataset):
        config = ClusteringConfig(num_clusters=3, prefix=2)
        estimator = make_estimator("tmfg-dbht", config)
        before = estimator.config
        estimator.fit(dataset.data)
        assert estimator.config is before
        assert estimator.config == ClusteringConfig(
            method="tmfg-dbht", num_clusters=3, prefix=2
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            estimator.config.prefix = 99

    def test_unfitted_labels_raise(self):
        with pytest.raises(NotFittedError):
            make_estimator("tmfg-dbht").labels_

    def test_deferred_cut(self, dataset):
        estimator = make_estimator("tmfg-dbht", prefix=2)
        estimator.fit(dataset.data)
        with pytest.raises(NotFittedError):
            estimator.labels_
        labels = estimator.result_.cut(dataset.num_classes)
        reference = make_estimator(
            "tmfg-dbht", prefix=2, num_clusters=dataset.num_classes
        ).fit_predict(dataset.data)
        np.testing.assert_array_equal(labels, reference)

    def test_kmeans_requires_num_clusters(self, dataset):
        with pytest.raises(ValueError, match="num_clusters"):
            make_estimator("kmeans").fit(dataset.data)

    def test_kmeans_rejects_precomputed(self, dataset):
        estimator = make_estimator("kmeans", precomputed=True, num_clusters=3)
        with pytest.raises(ValueError, match="raw series"):
            estimator.fit(np.eye(10))

    def test_failed_refit_clears_previous_result(self, dataset):
        estimator = make_estimator("tmfg-dbht", num_clusters=3, prefix=2)
        estimator.fit(dataset.data)
        with pytest.raises(ValueError):
            estimator.fit(np.zeros((3, 3)))  # too small for a TMFG
        assert estimator.result_ is None
        with pytest.raises(NotFittedError):
            estimator.labels_

    def test_explicit_dissimilarity_matches_functional_call(self, small_dataset):
        similarity, _ = similarity_and_dissimilarity(small_dataset.data)
        custom = 1.0 + np.abs(similarity.max() - similarity)
        np.fill_diagonal(custom, 0.0)
        direct = tmfg_dbht(similarity, custom, prefix=2).cut(3)
        estimator = make_estimator(
            "tmfg-dbht", prefix=2, num_clusters=3, precomputed=True
        )
        estimator.fit(similarity, dissimilarity=custom)
        np.testing.assert_array_equal(estimator.labels_, direct)
        # and the default derivation is genuinely different here
        default = make_estimator(
            "tmfg-dbht", prefix=2, num_clusters=3, precomputed=True
        ).fit(similarity)
        assert default.result_ is not None

    def test_raw_data_methods_reject_dissimilarity(self, dataset):
        estimator = make_estimator("kmeans", num_clusters=3)
        with pytest.raises(ValueError, match="dissimilarity"):
            estimator.fit(dataset.data, dissimilarity=np.eye(dataset.num_objects))


class TestTMFGByteIdentity:
    """The estimator must reproduce direct ``tmfg_dbht`` output exactly."""

    def test_matches_direct_call_on_raw_series(self, small_dataset):
        similarity, dissimilarity = similarity_and_dissimilarity(small_dataset.data)
        direct = tmfg_dbht(similarity, dissimilarity, prefix=3)
        estimator = TMFGClusterer(
            ClusteringConfig(prefix=3, num_clusters=small_dataset.num_classes)
        )
        estimator.fit(small_dataset.data)
        wrapped = estimator.result_.raw
        assert wrapped.tmfg.edges == direct.tmfg.edges
        assert wrapped.tmfg.initial_clique == direct.tmfg.initial_clique
        assert wrapped.tmfg.insertion_order == direct.tmfg.insertion_order
        np.testing.assert_array_equal(
            estimator.labels_, direct.cut(small_dataset.num_classes)
        )

    @pytest.mark.parametrize("case", ["time_series_prefix1", "time_series_prefix5", "regime_stream_window"])
    def test_matches_golden_snapshots(self, case):
        from tests.test_golden import CASES, _case_similarity

        expected = json.loads((GOLDEN_DIR / f"{case}.json").read_text(encoding="utf-8"))
        config = ClusteringConfig(
            prefix=CASES[case]["prefix"],
            num_clusters=CASES[case]["clusters"],
            precomputed=True,
        )
        estimator = TMFGClusterer(config)
        estimator.fit(_case_similarity(case))
        pipeline = estimator.result_.raw
        assert [
            [int(u), int(v)] for u, v in pipeline.tmfg.edges
        ] == expected["edges"]
        assert [int(v) for v in pipeline.tmfg.initial_clique] == expected["initial_clique"]
        assert [int(label) for label in estimator.labels_] == expected["labels"]


class TestClusterResult:
    def test_lazy_artefacts_and_json(self, small_dataset):
        estimator = make_estimator("tmfg-dbht", num_clusters=3, prefix=2)
        result = estimator.fit(small_dataset.data).result_
        assert result.dendrogram is not None
        assert result.bubble_tree is not None
        assert result.num_clusters == 3
        assert result.seconds > 0
        payload = json.loads(result.to_json())
        assert payload["method"] == "tmfg-dbht"
        assert payload["config"]["prefix"] == 2
        assert len(payload["labels"]) == small_dataset.num_objects
        assert "tmfg" in payload["step_seconds"]
        assert payload["extras"]["rounds"] >= 1
        # the non-serializable tracker is filtered out of the payload
        assert "tracker" not in payload["extras"]

    def test_to_dict_embeds_without_double_encoding(self, small_dataset):
        # The serving envelope embeds to_dict() directly: it must be the
        # exact JSON-safe dict behind to_json, so re-serializing it (alone
        # or inside a larger envelope) is byte-identical — no
        # stringify-then-reparse round trip anywhere.
        estimator = make_estimator("tmfg-dbht", num_clusters=3, prefix=2)
        result = estimator.fit(small_dataset.data).result_
        payload = result.to_dict()
        assert json.dumps(payload) == result.to_json()
        envelope = json.dumps({"result": payload, "serving": {"batch_size": 1}})
        assert json.dumps(json.loads(envelope)["result"]) == result.to_json()

    def test_numpy_scalar_extras_serialize(self, small_dataset):
        # Regression: numpy scalars are not Python-number instances, so
        # np.int64 / np.bool_ / np.float32 extras must get explicit
        # branches in _json_safe or to_json breaks on them.
        estimator = make_estimator("tmfg-dbht", num_clusters=3, prefix=2)
        result = estimator.fit(small_dataset.data).result_
        result.extras.update(
            {
                "np_int": np.int64(7),
                "np_bool": np.bool_(True),
                "np_float": np.float32(0.5),
            }
        )
        payload = json.loads(result.to_json())
        assert payload["extras"]["np_int"] == 7
        assert payload["extras"]["np_bool"] is True
        assert payload["extras"]["np_float"] == 0.5
        # ... including nested inside containers.
        result.extras["nested"] = {"flags": [np.bool_(False), np.int32(2)]}
        payload = json.loads(result.to_json())
        assert payload["extras"]["nested"] == {"flags": [False, 2]}

    def test_clone_is_independent_and_byte_identical(self, small_dataset):
        estimator = make_estimator("tmfg-dbht", num_clusters=3, prefix=2)
        result = estimator.fit(small_dataset.data).result_
        clone = result.clone()
        assert clone.to_json() == result.to_json()
        clone.labels[:] = -1
        clone.step_seconds["total"] = -1.0
        clone.extras["rounds"] = -1
        assert np.all(result.labels >= 0)
        assert result.step_seconds["total"] >= 0
        assert result.extras["rounds"] >= 1
        # The heavyweight raw artefacts are shared, not copied.
        assert clone.raw is result.raw

    def test_cut_without_dendrogram_raises(self, small_dataset):
        estimator = make_estimator("kmeans", num_clusters=3)
        result = estimator.fit(small_dataset.data).result_
        assert result.dendrogram is None
        with pytest.raises(ValueError, match="no dendrogram"):
            result.cut(2)

    def test_streaming_tick_converts(self):
        from repro.datasets.stocks import generate_regime_switching_stream
        from repro.streaming.runner import StreamingPipeline

        stream = generate_regime_switching_stream(num_stocks=48, num_days=80, seed=3)
        pipeline = StreamingPipeline(
            stream.returns, window=50, hop=15, num_clusters=3
        )
        ticks = pipeline.run().ticks
        tick_result = ticks[-1].to_cluster_result(pipeline.config)
        assert isinstance(tick_result, ClusterResult)
        np.testing.assert_array_equal(tick_result.labels, ticks[-1].labels)
        assert tick_result.extras["tick"] == ticks[-1].tick
        payload = json.loads(tick_result.to_json())
        assert payload["config"]["warm_start"] is True


class TestClusterMany:
    @pytest.fixture(scope="class")
    def matrices(self):
        rng = np.random.default_rng(0)
        return [rng.normal(size=(20, 40)) for _ in range(3)]

    def test_serial_matches_individual_fits(self, matrices):
        config = ClusteringConfig(num_clusters=3, prefix=2)
        results = cluster_many(matrices, config)
        assert len(results) == len(matrices)
        for matrix, result in zip(matrices, results):
            reference = make_estimator(config.method, config).fit_predict(matrix)
            np.testing.assert_array_equal(result.labels, reference)
            assert result.dendrogram is not None

    def test_named_thread_backend(self, matrices):
        config = ClusteringConfig(num_clusters=3)
        serial = cluster_many(matrices, config)
        threaded = cluster_many(matrices, config, backend="thread", workers=2)
        for a, b in zip(serial, threaded):
            np.testing.assert_array_equal(a.labels, b.labels)

    def test_process_backend_round_trips_full_results(self, matrices, process_backend):
        config = ClusteringConfig(num_clusters=3)
        results = cluster_many(matrices, config, backend=process_backend)
        reference = cluster_many(matrices, config)
        for got, want in zip(results, reference):
            np.testing.assert_array_equal(got.labels, want.labels)
            # the full result object (dendrogram included) pickles back
            assert got.dendrogram.num_leaves == want.dendrogram.num_leaves

    def test_heterogeneous_methods_via_config(self, matrices):
        for method_id in ("hac-average", "kmeans"):
            config = ClusteringConfig(method=method_id, num_clusters=2, linkage="average")
            results = cluster_many(matrices[:2], config)
            for result in results:
                assert result.num_clusters <= 2
                assert result.method in ("hac", "kmeans")
