"""Tests for the execution backends."""

from __future__ import annotations

import threading

import pytest

from repro.parallel.scheduler import (
    ParallelBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    make_backend,
    set_backend,
)


def _square(x):
    """Module-level so the process backend can pickle it."""
    return x * x


class TestSerialBackend:
    def test_map_preserves_order(self):
        backend = SerialBackend()
        assert backend.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_for_each_runs_side_effects(self):
        backend = SerialBackend()
        seen = []
        backend.for_each(seen.append, [1, 2, 3])
        assert seen == [1, 2, 3]

    def test_reports_single_worker(self):
        assert SerialBackend().num_workers == 1


class TestThreadBackend:
    def test_map_matches_serial(self):
        backend = ThreadBackend(num_workers=4)
        try:
            assert backend.map(lambda x: x + 1, list(range(50))) == [
                x + 1 for x in range(50)
            ]
        finally:
            backend.close()

    def test_actually_uses_multiple_threads(self):
        backend = ThreadBackend(num_workers=4)
        thread_names = set()
        lock = threading.Lock()

        def record(_):
            with lock:
                thread_names.add(threading.current_thread().name)
            # Give other workers a chance to pick up tasks.
            import time

            time.sleep(0.005)

        try:
            backend.for_each(record, list(range(32)))
        finally:
            backend.close()
        assert len(thread_names) >= 2

    def test_single_item_runs_inline(self):
        backend = ThreadBackend(num_workers=2)
        try:
            assert backend.map(lambda x: x, [7]) == [7]
        finally:
            backend.close()

    def test_map_accepts_generator_input(self):
        # Regression: len() on a generator raised TypeError despite the
        # Iterable signature; unsized inputs are materialized first.
        backend = ThreadBackend(num_workers=2)
        try:
            assert backend.map(lambda x: x * 2, (x for x in range(10))) == [
                x * 2 for x in range(10)
            ]
            assert backend.map(lambda x: x + 1, (x for x in range(1))) == [1]
            assert backend.map(lambda x: x, (x for x in range(0))) == []
        finally:
            backend.close()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ThreadBackend(num_workers=0)


class TestProcessBackend:
    def test_map_matches_serial(self):
        backend = ProcessBackend(num_workers=2)
        try:
            assert backend.map(_square, list(range(8))) == [x * x for x in range(8)]
        finally:
            backend.close()

    def test_single_item_runs_inline(self):
        backend = ProcessBackend(num_workers=2)
        try:
            assert backend.map(_square, [3]) == [9]
        finally:
            backend.close()

    def test_map_accepts_generator_input(self):
        backend = ProcessBackend(num_workers=2)
        try:
            assert backend.map(_square, (x for x in range(6))) == [
                x * x for x in range(6)
            ]
        finally:
            backend.close()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessBackend(num_workers=0)


class TestMakeBackend:
    def test_names_resolve_to_backend_classes(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        thread = make_backend("thread", num_workers=2)
        try:
            assert isinstance(thread, ThreadBackend)
            assert thread.num_workers == 2
        finally:
            thread.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_backend("gpu")

    def test_get_backend_rejects_names(self):
        # Names construct fresh pools the caller must own; get_backend
        # points to make_backend instead of leaking one silently.
        with pytest.raises(TypeError):
            get_backend("thread")


class TestDefaultBackend:
    def test_get_backend_returns_argument_if_given(self):
        backend = SerialBackend()
        assert get_backend(backend) is backend

    def test_set_backend_changes_default(self):
        original = get_backend()
        replacement = SerialBackend()
        try:
            set_backend(replacement)
            assert get_backend() is replacement
        finally:
            set_backend(original)

    def test_base_class_map_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ParallelBackend().map(lambda x: x, [1])
