"""Tests for the experiment harness and reporting utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import make_time_series_dataset
from repro.experiments.config import ExperimentConfig, default_config, quick_config
from repro.experiments.harness import available_methods, run_method, subsample
from repro.experiments.reporting import format_mapping, format_table


@pytest.fixture(scope="module")
def harness_dataset():
    return make_time_series_dataset(
        num_objects=48, length=48, num_classes=3, noise=1.0, seed=33
    )


class TestRunMethod:
    @pytest.mark.parametrize(
        "method",
        ["PAR-TDBHT-1", "PAR-TDBHT-5", "COMP", "AVG", "K-MEANS", "K-MEANS-S"],
    )
    def test_methods_produce_valid_labels(self, harness_dataset, method):
        run = run_method(method, harness_dataset, seed=0)
        assert run.labels.shape == (harness_dataset.num_objects,)
        assert -1.0 <= run.ari <= 1.0
        assert run.seconds >= 0.0

    def test_slow_baselines_run_on_small_data(self, harness_dataset):
        small = subsample(harness_dataset, 30, seed=0)
        for method in ("SEQ-TDBHT", "PMFG-DBHT"):
            run = run_method(method, small, seed=0)
            assert run.labels.shape == (30,)

    def test_tdbht_reports_step_seconds_and_tracker(self, harness_dataset):
        run = run_method("PAR-TDBHT-5", harness_dataset, seed=0)
        assert set(run.step_seconds) == {"tmfg", "apsp", "bubble-tree", "hierarchy"}
        assert "tracker" in run.extras
        assert run.extras["rounds"] >= 1

    def test_method_names_are_case_insensitive(self, harness_dataset):
        run = run_method("par-tdbht-1", harness_dataset, seed=0)
        assert run.method == "PAR-TDBHT-1"

    def test_unknown_method_rejected(self, harness_dataset):
        with pytest.raises(ValueError):
            run_method("DBSCAN", harness_dataset)

    def test_custom_cluster_count(self, harness_dataset):
        run = run_method("COMP", harness_dataset, num_clusters=5)
        assert len(np.unique(run.labels)) == 5

    def test_ami_computed_on_request(self, harness_dataset):
        run = run_method("COMP", harness_dataset, compute_ami=True)
        assert run.ami is not None
        assert -1.0 <= run.ami <= 1.0

    def test_available_methods_lists_the_paper_names(self):
        methods = available_methods()
        assert "PAR-TDBHT-1" in methods
        assert "PMFG-DBHT" in methods
        assert "K-MEANS-S" in methods


class TestSubsample:
    def test_no_op_when_small_enough(self, harness_dataset):
        assert subsample(harness_dataset, 1000) is harness_dataset

    def test_reduces_size_and_keeps_alignment(self, harness_dataset):
        small = subsample(harness_dataset, 20, seed=1)
        assert small.num_objects == 20
        assert small.data.shape[0] == small.labels.shape[0]

    def test_deterministic_for_seed(self, harness_dataset):
        a = subsample(harness_dataset, 20, seed=1)
        b = subsample(harness_dataset, 20, seed=1)
        np.testing.assert_array_equal(a.data, b.data)


class TestConfig:
    def test_default_config_covers_all_datasets(self):
        config = default_config()
        assert len(config.dataset_ids) == 18
        assert 1 in config.prefix_sizes
        assert config.default_prefix == 10

    def test_quick_config_is_smaller(self):
        config = quick_config()
        assert len(config.dataset_ids) < 18
        assert config.scale < default_config().scale

    def test_dataset_kwargs_round_trip(self):
        config = ExperimentConfig(scale=0.1, noise=2.0, outlier_fraction=0.0)
        kwargs = config.dataset_kwargs()
        assert kwargs["scale"] == 0.1
        assert kwargs["noise"] == 2.0


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.123456]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "4.123" in text

    def test_format_table_with_title(self):
        text = format_table(["x"], [[1]], title="My title")
        assert text.splitlines()[0] == "My title"

    def test_format_mapping(self):
        text = format_mapping("Stats", {"ari": 0.51234, "n": 10})
        assert "ari: 0.5123" in text
        assert "n: 10" in text
