"""Tests for PMFG construction."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.baselines.pmfg import construct_pmfg
from repro.core.tmfg import construct_tmfg
from repro.graph.planarity import is_planar, is_planar_with_extra_edge
from repro.metrics.edge_sum import edge_weight_sum_ratio

from tests.conftest import random_similarity_matrix


class TestPMFGStructure:
    @pytest.mark.parametrize("n", [6, 12, 20])
    def test_edge_count_is_maximal_planar(self, n):
        similarity = random_similarity_matrix(n, seed=n)
        result = construct_pmfg(similarity)
        assert result.graph.num_edges == 3 * n - 6

    def test_output_is_planar(self):
        similarity = random_similarity_matrix(15, seed=3)
        result = construct_pmfg(similarity)
        assert is_planar(result.graph)

    def test_output_is_maximal(self):
        similarity = random_similarity_matrix(12, seed=5)
        result = construct_pmfg(similarity)
        edges = [(u, v) for u, v, _ in result.graph.edges()]
        n = similarity.shape[0]
        missing = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if not result.graph.has_edge(u, v)
        ]
        for extra in missing[:8]:
            assert not is_planar_with_extra_edge(n, edges, extra)

    def test_small_graph_keeps_everything(self):
        # With 4 or 5 vertices, all edges fit in a planar graph.
        similarity = random_similarity_matrix(5, seed=0)
        result = construct_pmfg(similarity)
        assert result.graph.num_edges == 9

    def test_edge_weights_from_similarity(self):
        similarity = random_similarity_matrix(10, seed=1)
        result = construct_pmfg(similarity)
        for u, v, weight in result.graph.edges():
            assert weight == pytest.approx(similarity[u, v])

    def test_tested_candidate_count_bounded(self):
        similarity = random_similarity_matrix(10, seed=2)
        result = construct_pmfg(similarity)
        assert result.candidates_tested <= 45  # n(n-1)/2


class TestGreedyProperty:
    def test_heaviest_edge_always_kept(self):
        similarity = random_similarity_matrix(12, seed=8)
        result = construct_pmfg(similarity)
        upper = [
            (similarity[i, j], i, j)
            for i in range(12)
            for j in range(i + 1, 12)
        ]
        _, i, j = max(upper)
        assert result.graph.has_edge(i, j)

    def test_matches_brute_force_greedy_on_small_input(self):
        # Independent re-implementation of the greedy loop, using the same
        # planarity oracle, to pin down the selection rule.
        similarity = random_similarity_matrix(9, seed=13)
        n = 9
        pairs = sorted(
            ((i, j) for i in range(n) for j in range(i + 1, n)),
            key=lambda edge: -similarity[edge],
        )
        edges = []
        for u, v in pairs:
            if len(edges) >= 3 * n - 6:
                break
            if is_planar(edges + [(u, v)], num_vertices=n):
                edges.append((u, v))
        result = construct_pmfg(similarity)
        actual = {(u, v) for u, v, _ in result.graph.edges()}
        assert actual == set(edges)


class TestPMFGVersusTMFG:
    def test_pmfg_keeps_at_least_as_much_weight_on_typical_inputs(self, small_matrices):
        similarity, _ = small_matrices
        subset = similarity[:30, :30]
        pmfg = construct_pmfg(subset)
        tmfg = construct_tmfg(subset, prefix=1, build_bubble_tree=False)
        ratio = edge_weight_sum_ratio(pmfg.graph, tmfg.graph)
        # The paper reports TMFG edge sums within a few percent of PMFG; the
        # greedy PMFG is normally at least as heavy.
        assert ratio > 0.97

    def test_same_number_of_edges_as_tmfg(self, small_matrices):
        similarity, _ = small_matrices
        subset = similarity[:25, :25]
        pmfg = construct_pmfg(subset)
        tmfg = construct_tmfg(subset, prefix=1, build_bubble_tree=False)
        assert pmfg.graph.num_edges == tmfg.graph.num_edges
