"""Tests for the original (generic planar graph) DBHT baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.classic_dbht import (
    build_bubble_tree_from_graph,
    classic_dbht,
    direct_edges_bfs,
    pmfg_dbht,
)
from repro.core.direction import compute_directions
from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.synthetic import make_time_series_dataset
from repro.metrics.ari import adjusted_rand_index

from tests.conftest import random_similarity_matrix


@pytest.fixture(scope="module")
def tiny_dataset():
    return make_time_series_dataset(
        num_objects=40, length=40, num_classes=3, noise=1.0, seed=21
    )


@pytest.fixture(scope="module")
def tiny_matrices(tiny_dataset):
    return similarity_and_dissimilarity(tiny_dataset.data)


class TestGenericBubbleTree:
    def test_matches_tmfg_bubble_count(self, tiny_matrices):
        similarity, _ = tiny_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        generic = build_bubble_tree_from_graph(tmfg.graph)
        # A TMFG on n vertices has exactly n-3 bubbles.
        assert generic.num_bubbles == similarity.shape[0] - 3

    def test_bubble_vertex_sets_match_tmfg_bubbles(self, tiny_matrices):
        similarity, _ = tiny_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        generic = build_bubble_tree_from_graph(tmfg.graph)
        expected = {frozenset(b.vertices) for b in tmfg.bubble_tree.bubbles}
        actual = set(generic.bubbles)
        assert actual == expected

    def test_tree_has_right_number_of_edges(self, tiny_matrices):
        similarity, _ = tiny_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        generic = build_bubble_tree_from_graph(tmfg.graph)
        assert len(generic.edges) == generic.num_bubbles - 1

    def test_separating_triangles_match_tmfg(self, tiny_matrices):
        similarity, _ = tiny_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        generic = build_bubble_tree_from_graph(tmfg.graph)
        expected = set()
        for bubble in tmfg.bubble_tree.bubbles:
            if bubble.parent is not None:
                expected.add(tmfg.bubble_tree.separating_triangle(bubble.id))
        actual = {triangle for _, _, triangle in generic.edges}
        assert actual == expected

    def test_single_bubble_for_4_clique(self):
        similarity = random_similarity_matrix(4, seed=0)
        tmfg = construct_tmfg(similarity, prefix=1)
        generic = build_bubble_tree_from_graph(tmfg.graph)
        assert generic.num_bubbles == 1
        assert generic.edges == []

    def test_empty_graph_rejected(self):
        from repro.graph.weighted_graph import WeightedGraph

        with pytest.raises(ValueError):
            build_bubble_tree_from_graph(WeightedGraph(5))


class TestGenericDirections:
    def test_same_converging_bubbles_as_fast_algorithm(self, tiny_matrices):
        similarity, _ = tiny_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        fast_directions = compute_directions(tmfg.bubble_tree, tmfg.graph)
        fast_converging = {
            frozenset(tmfg.bubble_tree.bubble(b).vertices)
            for b in fast_directions.converging_bubbles(tmfg.bubble_tree)
        }
        generic = build_bubble_tree_from_graph(tmfg.graph)
        slow_directions = direct_edges_bfs(generic, tmfg.graph)
        slow_converging = {
            generic.bubbles[b] for b in slow_directions.converging_bubbles(generic)
        }
        assert fast_converging == slow_converging

    def test_every_bubble_reaches_converging(self, tiny_matrices):
        similarity, _ = tiny_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        generic = build_bubble_tree_from_graph(tmfg.graph)
        directions = direct_edges_bfs(generic, tmfg.graph)
        reach = directions.reachable_converging_bubbles(generic)
        assert all(reach[b] for b in range(generic.num_bubbles))


class TestEndToEnd:
    def test_classic_dbht_on_tmfg_graph(self, tiny_dataset, tiny_matrices):
        similarity, dissimilarity = tiny_matrices
        tmfg = construct_tmfg(similarity, prefix=1)
        result = classic_dbht(tmfg.graph, dissimilarity)
        assert result.dendrogram.is_complete
        labels = result.cut(tiny_dataset.num_classes)
        assert adjusted_rand_index(tiny_dataset.labels, labels) > 0.4

    def test_pmfg_dbht_end_to_end(self, tiny_dataset, tiny_matrices):
        similarity, dissimilarity = tiny_matrices
        result = pmfg_dbht(similarity, dissimilarity)
        assert result.dendrogram.is_complete
        assert result.dendrogram.heights_monotone()
        labels = result.cut(tiny_dataset.num_classes)
        assert adjusted_rand_index(tiny_dataset.labels, labels) > 0.4

    def test_pmfg_dbht_derives_dissimilarity(self, tiny_matrices):
        similarity, _ = tiny_matrices
        result = pmfg_dbht(similarity)
        assert result.dendrogram.is_complete
