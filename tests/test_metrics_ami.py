"""Tests for mutual information, entropy, and AMI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.ami import (
    adjusted_mutual_information,
    entropy,
    expected_mutual_information,
    mutual_information,
)
from repro.metrics.contingency import contingency_table


class TestEntropy:
    def test_uniform_two_classes(self):
        assert entropy([0, 1, 0, 1]) == pytest.approx(np.log(2))

    def test_single_class_is_zero(self):
        assert entropy([3, 3, 3]) == pytest.approx(0.0)

    def test_empty_is_zero(self):
        assert entropy([]) == 0.0

    def test_uniform_k_classes(self):
        labels = list(range(8)) * 4
        assert entropy(labels) == pytest.approx(np.log(8))


class TestMutualInformation:
    def test_identical_labelings_equal_entropy(self):
        labels = [0, 0, 1, 1, 2, 2]
        assert mutual_information(labels, labels) == pytest.approx(entropy(labels))

    def test_independent_labelings_zero(self):
        a = [0, 0, 1, 1]
        b = [0, 1, 0, 1]
        assert mutual_information(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            a = rng.integers(0, 3, size=40)
            b = rng.integers(0, 4, size=40)
            assert mutual_information(a, b) >= 0.0

    def test_bounded_by_min_entropy(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = rng.integers(0, 3, size=50)
            b = rng.integers(0, 5, size=50)
            assert mutual_information(a, b) <= min(entropy(a), entropy(b)) + 1e-9


class TestExpectedMutualInformation:
    def test_zero_for_single_cluster(self):
        _, rows, cols = contingency_table([0, 0, 0], [0, 0, 0])
        assert expected_mutual_information(rows, cols) == pytest.approx(0.0)

    def test_positive_for_balanced_partitions(self):
        _, rows, cols = contingency_table([0, 0, 1, 1], [0, 1, 0, 1])
        assert expected_mutual_information(rows, cols) > 0.0

    def test_less_than_entropy(self):
        labels = [0, 0, 1, 1, 2, 2, 3, 3]
        _, rows, cols = contingency_table(labels, labels)
        assert expected_mutual_information(rows, cols) < entropy(labels)


class TestAMI:
    def test_perfect_match_is_one(self):
        labels = [0, 0, 1, 1, 2, 2]
        assert adjusted_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [2, 2, 0, 0, 1, 1]
        assert adjusted_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(4)
        scores = []
        for _ in range(20):
            a = rng.integers(0, 3, size=100)
            b = rng.integers(0, 3, size=100)
            scores.append(adjusted_mutual_information(a, b))
        assert abs(float(np.mean(scores))) < 0.05

    def test_single_cluster_each_is_perfect(self):
        assert adjusted_mutual_information([0, 0, 0], [5, 5, 5]) == pytest.approx(1.0)

    def test_average_methods(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [0, 0, 0, 1, 1, 2]
        for method in ("arithmetic", "max", "min"):
            value = adjusted_mutual_information(a, b, average_method=method)
            assert -1.0 <= value <= 1.0

    def test_unknown_average_method_rejected(self):
        with pytest.raises(ValueError):
            adjusted_mutual_information([0, 1], [0, 1], average_method="geometric")

    def test_tracks_ari_trend(self):
        # AMI and ARI should both prefer the better clustering.
        from repro.metrics.ari import adjusted_rand_index

        truth = [0] * 10 + [1] * 10 + [2] * 10
        good = truth.copy()
        good[0] = 1
        bad = [0, 1, 2] * 10
        assert adjusted_mutual_information(truth, good) > adjusted_mutual_information(
            truth, bad
        )
        assert adjusted_rand_index(truth, good) > adjusted_rand_index(truth, bad)
