"""Golden regression tests: fixed-seed end-to-end ``tmfg_dbht`` snapshots.

The snapshots under ``tests/golden/`` pin the TMFG edge list, initial
clique, insertion order, and flat cut labels of fixed-seed runs.  The test
recomputes each case with both the ``python`` and ``numpy`` kernels and
asserts byte-identical agreement with the committed JSON (exact integer
equality, no tolerances), so any silent numerical drift in the gain
updates, APSP kernels, or hierarchy construction fails loudly.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_golden.py --regenerate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import tmfg_dbht
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.stocks import generate_regime_switching_stream
from repro.datasets.synthetic import make_time_series_dataset
from repro.parallel.kernels import KERNEL_NAMES

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "time_series_prefix1": {"prefix": 1, "clusters": 3},
    "time_series_prefix5": {"prefix": 5, "clusters": 4},
    "regime_stream_window": {"prefix": 1, "clusters": 5},
}


def _case_similarity(name: str) -> np.ndarray:
    if name.startswith("time_series"):
        dataset = make_time_series_dataset(
            num_objects=36, length=48, num_classes=3, noise=0.9, seed=1234
        )
        similarity, _ = similarity_and_dissimilarity(dataset.data)
        return similarity
    stream = generate_regime_switching_stream(
        num_stocks=48, num_days=160, num_regimes=2, regime_length=80, seed=77
    )
    similarity, _ = similarity_and_dissimilarity(stream.returns[:, 40:140])
    return similarity


def _snapshot(name: str, kernel: str) -> dict:
    config = CASES[name]
    similarity = _case_similarity(name)
    result = tmfg_dbht(similarity, prefix=config["prefix"], kernel=kernel)
    labels = result.cut(config["clusters"])
    return {
        "case": name,
        "prefix": config["prefix"],
        "clusters": config["clusters"],
        "initial_clique": [int(v) for v in result.tmfg.initial_clique],
        "edges": [[int(u), int(v)] for u, v in result.tmfg.edges],
        "insertion_order": [
            [int(vertex), sorted(int(c) for c in face)]
            for vertex, face in result.tmfg.insertion_order
        ],
        "labels": [int(label) for label in labels],
    }


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
@pytest.mark.parametrize("case", sorted(CASES))
def test_snapshot_matches_golden(case, kernel):
    path = GOLDEN_DIR / f"{case}.json"
    expected = json.loads(path.read_text(encoding="utf-8"))
    actual = _snapshot(case, kernel)
    # Exact equality, field by field for a readable diff on failure.
    assert actual["initial_clique"] == expected["initial_clique"]
    assert actual["edges"] == expected["edges"]
    assert actual["insertion_order"] == expected["insertion_order"]
    assert actual["labels"] == expected["labels"]
    assert actual == expected


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for case in sorted(CASES):
        payload = _snapshot(case, kernel="numpy")
        reference = _snapshot(case, kernel="python")
        if payload != reference:
            raise AssertionError(f"kernels disagree on {case}; refusing to regenerate")
        path = GOLDEN_DIR / f"{case}.json"
        path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
