"""Tests for the synthetic data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.similarity import correlation_matrix
from repro.datasets.synthetic import make_gaussian_blobs, make_time_series_dataset


class TestTimeSeriesGenerator:
    def test_shapes_and_labels(self):
        dataset = make_time_series_dataset(50, 64, 4, seed=0)
        assert dataset.data.shape == (50, 64)
        assert dataset.labels.shape == (50,)
        assert dataset.num_classes == 4

    def test_deterministic_for_seed(self):
        a = make_time_series_dataset(30, 32, 3, seed=5)
        b = make_time_series_dataset(30, 32, 3, seed=5)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_time_series_dataset(30, 32, 3, seed=5)
        b = make_time_series_dataset(30, 32, 3, seed=6)
        assert not np.allclose(a.data, b.data)

    def test_classes_are_balanced(self):
        dataset = make_time_series_dataset(40, 32, 4, seed=1)
        _, counts = np.unique(dataset.labels, return_counts=True)
        assert counts.tolist() == [10, 10, 10, 10]

    def test_within_class_correlation_exceeds_between_class(self):
        dataset = make_time_series_dataset(60, 128, 3, noise=0.8, seed=2)
        correlation = correlation_matrix(dataset.data)
        same = []
        different = []
        for i in range(60):
            for j in range(i + 1, 60):
                if dataset.labels[i] == dataset.labels[j]:
                    same.append(correlation[i, j])
                else:
                    different.append(correlation[i, j])
        assert np.mean(same) > np.mean(different) + 0.2

    def test_noise_reduces_within_class_correlation(self):
        quiet = make_time_series_dataset(40, 128, 2, noise=0.2, seed=3)
        noisy = make_time_series_dataset(40, 128, 2, noise=3.0, seed=3)

        def mean_same_class_correlation(dataset):
            correlation = correlation_matrix(dataset.data)
            values = [
                correlation[i, j]
                for i in range(40)
                for j in range(i + 1, 40)
                if dataset.labels[i] == dataset.labels[j]
            ]
            return float(np.mean(values))

        assert mean_same_class_correlation(quiet) > mean_same_class_correlation(noisy)

    def test_outliers_added(self):
        clean = make_time_series_dataset(50, 64, 2, noise=0.5, seed=9)
        with_outliers = make_time_series_dataset(
            50, 64, 2, noise=0.5, seed=9, outlier_fraction=0.1, outlier_scale=5.0
        )
        # Outlier rows have larger variance than the corresponding clean rows.
        assert with_outliers.data.var() > clean.data.var()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_time_series_dataset(3, 32, 4)
        with pytest.raises(ValueError):
            make_time_series_dataset(10, 32, 0)
        with pytest.raises(ValueError):
            make_time_series_dataset(10, 32, 2, outlier_fraction=1.5)


class TestBlobs:
    def test_shapes(self):
        dataset = make_gaussian_blobs(30, 5, 3, seed=0)
        assert dataset.data.shape == (30, 5)
        assert dataset.num_classes == 3

    def test_separation_controls_difficulty(self):
        near = make_gaussian_blobs(60, 3, 3, separation=0.1, noise=1.0, seed=1)
        far = make_gaussian_blobs(60, 3, 3, separation=20.0, noise=1.0, seed=1)

        def average_center_distance(dataset):
            centers = [
                dataset.data[dataset.labels == label].mean(axis=0)
                for label in range(3)
            ]
            total = 0.0
            count = 0
            for i in range(3):
                for j in range(i + 1, 3):
                    total += np.linalg.norm(centers[i] - centers[j])
                    count += 1
            return total / count

        assert average_center_distance(far) > average_center_distance(near)

    def test_rejects_more_classes_than_objects(self):
        with pytest.raises(ValueError):
            make_gaussian_blobs(2, 3, 5)
