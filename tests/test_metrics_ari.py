"""Tests for the Adjusted Rand Index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.ari import adjusted_rand_index, rand_index
from repro.metrics.contingency import contingency_table


class TestContingency:
    def test_counts_pairs(self):
        table, rows, cols = contingency_table([0, 0, 1, 1], [0, 1, 1, 1])
        assert table.tolist() == [[1, 1], [0, 2]]
        assert rows.tolist() == [2, 2]
        assert cols.tolist() == [1, 3]

    def test_arbitrary_label_values(self):
        table, _, _ = contingency_table(["a", "b", "a"], [10, 10, 20])
        assert table.sum() == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            contingency_table([0, 1], [0])


class TestARI:
    def test_perfect_match_is_one(self):
        labels = [0, 0, 1, 1, 2, 2]
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_perfect(self):
        assert adjusted_rand_index([0, 0, 1, 1], [5, 5, 2, 2]) == pytest.approx(1.0)

    def test_known_value(self):
        # Classic example: ARI of these two partitions is 0.24242...
        labels_true = [0, 0, 0, 1, 1, 1]
        labels_pred = [0, 0, 1, 1, 2, 2]
        assert adjusted_rand_index(labels_true, labels_pred) == pytest.approx(
            0.24242424, abs=1e-6
        )

    def test_single_cluster_vs_split(self):
        value = adjusted_rand_index([0] * 6, [0, 0, 0, 1, 1, 1])
        assert value == pytest.approx(0.0)

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(0)
        scores = []
        for _ in range(30):
            a = rng.integers(0, 4, size=200)
            b = rng.integers(0, 4, size=200)
            scores.append(adjusted_rand_index(a, b))
        assert abs(float(np.mean(scores))) < 0.05

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=50)
        b = rng.integers(0, 5, size=50)
        assert adjusted_rand_index(a, b) == pytest.approx(adjusted_rand_index(b, a))

    def test_matches_sklearn_formula_on_random_inputs(self):
        # Independent reference implementation of the same formula.
        def reference(labels_true, labels_pred):
            from scipy.special import comb

            table, rows, cols = contingency_table(labels_true, labels_pred)
            n = rows.sum()
            sum_comb = sum(comb(v, 2) for v in table.ravel())
            sum_rows = sum(comb(v, 2) for v in rows)
            sum_cols = sum(comb(v, 2) for v in cols)
            expected = sum_rows * sum_cols / comb(n, 2)
            max_index = 0.5 * (sum_rows + sum_cols)
            if max_index == expected:
                return 1.0
            return (sum_comb - expected) / (max_index - expected)

        rng = np.random.default_rng(3)
        for _ in range(10):
            a = rng.integers(0, 5, size=60)
            b = rng.integers(0, 3, size=60)
            assert adjusted_rand_index(a, b) == pytest.approx(reference(a, b))

    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=2, max_size=60))
    def test_ari_with_itself_is_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=40),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_ari_at_most_one(self, labels, seed):
        rng = np.random.default_rng(seed)
        other = rng.integers(0, 4, size=len(labels))
        assert adjusted_rand_index(labels, other) <= 1.0 + 1e-12


class TestRandIndex:
    def test_perfect_match(self):
        assert rand_index([0, 1, 0], [1, 0, 1]) == pytest.approx(1.0)

    def test_half_agreement(self):
        # Pairs: (0,1) disagree? compute a known small case.
        value = rand_index([0, 0, 1, 1], [0, 1, 0, 1])
        assert value == pytest.approx(1.0 / 3.0)

    def test_bounded_between_zero_and_one(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            a = rng.integers(0, 3, size=30)
            b = rng.integers(0, 3, size=30)
            assert 0.0 <= rand_index(a, b) <= 1.0
