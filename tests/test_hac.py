"""Tests for the nearest-neighbour-chain HAC, cross-checked against scipy."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage
from scipy.spatial.distance import squareform

from repro.baselines.hac import hac_dendrogram, hac_labels, linkage
from repro.dendrogram.cut import cut_k
from repro.metrics.ari import adjusted_rand_index


def random_distance_matrix(n, seed):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 3))
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt((diff ** 2).sum(axis=-1))


class TestLinkageStructure:
    def test_number_of_merges(self):
        distances = random_distance_matrix(10, 0)
        merges = linkage(distances, "complete")
        assert merges.shape == (9, 4)

    def test_final_cluster_contains_everything(self):
        distances = random_distance_matrix(8, 1)
        merges = linkage(distances, "average")
        assert merges[-1, 3] == 8

    def test_single_point(self):
        assert linkage(np.zeros((1, 1)), "complete").shape == (0, 4)

    def test_two_points(self):
        distances = np.array([[0.0, 2.0], [2.0, 0.0]])
        merges = linkage(distances, "single")
        assert merges.shape == (1, 4)
        assert merges[0, 2] == pytest.approx(2.0)

    def test_unknown_linkage_rejected(self):
        with pytest.raises(ValueError):
            linkage(np.zeros((3, 3)), "ward")

    def test_asymmetric_matrix_rejected(self):
        matrix = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            linkage(matrix, "complete")

    def test_nan_matrix_rejected(self):
        matrix = np.full((3, 3), np.nan)
        with pytest.raises(ValueError):
            linkage(matrix, "complete")

    def test_merge_heights_monotone_for_reducible_linkages(self):
        for method in ("single", "complete", "average"):
            distances = random_distance_matrix(20, 4)
            dendrogram = hac_dendrogram(distances, method=method)
            assert dendrogram.heights_monotone(), method


class TestAgainstScipy:
    @pytest.mark.parametrize("method", ["single", "complete", "average"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flat_clusters_match_scipy(self, method, seed):
        distances = random_distance_matrix(25, seed)
        condensed = squareform(distances, checks=False)
        scipy_result = scipy_linkage(condensed, method=method)
        for k in (2, 3, 5):
            ours = hac_labels(distances, k, method=method)
            theirs = fcluster(scipy_result, k, criterion="maxclust")
            assert adjusted_rand_index(ours, theirs) == pytest.approx(1.0), (
                method,
                seed,
                k,
            )

    @pytest.mark.parametrize("method", ["single", "complete", "average"])
    def test_root_height_matches_scipy(self, method):
        distances = random_distance_matrix(18, 7)
        condensed = squareform(distances, checks=False)
        scipy_result = scipy_linkage(condensed, method=method)
        ours = linkage(distances, method=method)
        assert ours[:, 2].max() == pytest.approx(scipy_result[:, 2].max())

    def test_cophenetic_heights_match_scipy_complete(self):
        # For complete linkage the multiset of merge distances must agree.
        distances = random_distance_matrix(15, 9)
        condensed = squareform(distances, checks=False)
        scipy_result = scipy_linkage(condensed, method="complete")
        ours = linkage(distances, method="complete")
        np.testing.assert_allclose(
            np.sort(ours[:, 2]), np.sort(scipy_result[:, 2]), rtol=1e-10
        )


class TestQuality:
    def test_separated_blobs_are_recovered(self):
        rng = np.random.default_rng(3)
        points = np.vstack(
            [rng.normal(loc=center, scale=0.2, size=(10, 2)) for center in ((0, 0), (5, 5), (10, 0))]
        )
        labels_true = np.repeat([0, 1, 2], 10)
        diff = points[:, None, :] - points[None, :, :]
        distances = np.sqrt((diff ** 2).sum(axis=-1))
        for method in ("single", "complete", "average"):
            labels = hac_labels(distances, 3, method=method)
            assert adjusted_rand_index(labels_true, labels) == pytest.approx(1.0)

    def test_weighted_linkage_runs(self):
        distances = random_distance_matrix(12, 11)
        dendrogram = hac_dendrogram(distances, method="weighted")
        assert dendrogram.is_complete
