"""Tests for the local-file data loaders (UCR TSV format, price CSV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loaders import load_price_csv, load_ucr_tsv


def _write_ucr(path, labels, data, sep="\t"):
    with open(path, "w", encoding="utf-8") as handle:
        for label, row in zip(labels, data):
            handle.write(sep.join([str(label)] + [f"{v:.6f}" for v in row]) + "\n")


class TestLoadUcrTsv:
    def test_reads_labels_and_series(self, tmp_path):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(12, 20))
        labels = [1, 2, 3] * 4
        path = tmp_path / "Toy_TRAIN.tsv"
        _write_ucr(path, labels, data)
        dataset = load_ucr_tsv(str(path))
        assert dataset.data.shape == (12, 20)
        assert dataset.num_classes == 3
        assert set(np.unique(dataset.labels)) == {0, 1, 2}
        assert dataset.name == "Toy"

    def test_concatenates_train_and_test(self, tmp_path):
        rng = np.random.default_rng(1)
        train = rng.normal(size=(5, 8))
        test = rng.normal(size=(7, 8))
        train_path = tmp_path / "Toy_TRAIN.tsv"
        test_path = tmp_path / "Toy_TEST.tsv"
        _write_ucr(train_path, [0] * 5, train)
        _write_ucr(test_path, [1] * 7, test)
        dataset = load_ucr_tsv(str(train_path), test_path=str(test_path))
        assert dataset.num_objects == 12
        np.testing.assert_allclose(dataset.data[:5], train, atol=1e-5)

    def test_comma_separated_files_are_detected(self, tmp_path):
        data = np.arange(12, dtype=float).reshape(3, 4)
        path = tmp_path / "toy.csv"
        _write_ucr(path, [0, 0, 1], data, sep=",")
        dataset = load_ucr_tsv(str(path))
        assert dataset.data.shape == (3, 4)

    def test_mismatched_lengths_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("0\t1.0\t2.0\n")
            handle.write("1\t1.0\n")
        with pytest.raises(ValueError):
            load_ucr_tsv(str(path))

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\tx\ty\n")
        with pytest.raises(ValueError):
            load_ucr_tsv(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("\n")
        with pytest.raises(ValueError):
            load_ucr_tsv(str(path))

    def test_train_test_length_mismatch_rejected(self, tmp_path):
        train_path = tmp_path / "a.tsv"
        test_path = tmp_path / "b.tsv"
        _write_ucr(train_path, [0], np.zeros((1, 4)))
        _write_ucr(test_path, [0], np.zeros((1, 5)))
        with pytest.raises(ValueError):
            load_ucr_tsv(str(train_path), test_path=str(test_path))

    def test_pipeline_runs_on_loaded_data(self, tmp_path):
        from repro import tmfg_dbht
        from repro.datasets.similarity import similarity_and_dissimilarity
        from repro.datasets.synthetic import make_time_series_dataset

        source = make_time_series_dataset(25, 30, 2, noise=0.8, seed=3)
        path = tmp_path / "Synthetic_TRAIN.tsv"
        _write_ucr(path, source.labels.tolist(), source.data)
        dataset = load_ucr_tsv(str(path))
        similarity, dissimilarity = similarity_and_dissimilarity(dataset.data)
        result = tmfg_dbht(similarity, dissimilarity, prefix=2)
        assert result.dendrogram.num_leaves == 25


class TestLoadPriceCsv:
    def test_reads_matrix(self, tmp_path):
        prices = np.abs(np.random.default_rng(0).normal(50, 5, size=(4, 10))) + 1
        path = tmp_path / "prices.csv"
        np.savetxt(path, prices, delimiter=",")
        loaded = load_price_csv(str(path))
        np.testing.assert_allclose(loaded, prices, rtol=1e-6)

    def test_transposes_when_stocks_in_columns(self, tmp_path):
        prices = np.abs(np.random.default_rng(1).normal(50, 5, size=(10, 4))) + 1
        path = tmp_path / "prices.csv"
        np.savetxt(path, prices, delimiter=",")
        loaded = load_price_csv(str(path), stocks_in_rows=False)
        assert loaded.shape == (4, 10)

    def test_non_positive_prices_rejected(self, tmp_path):
        prices = np.ones((3, 5))
        prices[1, 2] = 0.0
        path = tmp_path / "prices.csv"
        np.savetxt(path, prices, delimiter=",")
        with pytest.raises(ValueError):
            load_price_csv(str(path))
