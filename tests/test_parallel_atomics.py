"""Tests for the priority concurrent write cells."""

from __future__ import annotations

import threading

import pytest

from repro.parallel.atomics import WriteAdd, WriteMax, WriteMin


class TestWriteMin:
    def test_keeps_smallest_value(self):
        cell = WriteMin(10)
        assert cell.write(5) is True
        assert cell.write(7) is False
        assert cell.value == 5

    def test_initial_value_is_reported(self):
        cell = WriteMin(3.5)
        assert cell.value == 3.5

    def test_tuple_values_break_ties_lexicographically(self):
        cell = WriteMin((float("inf"), -1))
        cell.write((2.0, 7))
        cell.write((2.0, 3))
        assert cell.value == (2.0, 3)

    def test_concurrent_writes_keep_global_minimum(self):
        cell = WriteMin(float("inf"))
        values = list(range(1000, 0, -1))

        def writer(chunk):
            for value in chunk:
                cell.write(value)

        threads = [
            threading.Thread(target=writer, args=(values[i::4],)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cell.value == 1


class TestWriteMax:
    def test_keeps_largest_value(self):
        cell = WriteMax(0)
        assert cell.write(4) is True
        assert cell.write(2) is False
        assert cell.value == 4

    def test_equal_value_is_not_an_update(self):
        cell = WriteMax(4)
        assert cell.write(4) is False

    def test_concurrent_writes_keep_global_maximum(self):
        cell = WriteMax(float("-inf"))
        values = list(range(500))

        def writer(chunk):
            for value in chunk:
                cell.write(value)

        threads = [
            threading.Thread(target=writer, args=(values[i::3],)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cell.value == 499


class TestWriteAdd:
    def test_accumulates_sum(self):
        cell = WriteAdd()
        cell.write(1.5)
        cell.write(2.5)
        assert cell.value == pytest.approx(4.0)

    def test_returns_running_total(self):
        cell = WriteAdd(1.0)
        assert cell.write(2.0) == pytest.approx(3.0)

    def test_concurrent_adds_are_not_lost(self):
        cell = WriteAdd()

        def writer():
            for _ in range(10000):
                cell.write(1.0)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cell.value == pytest.approx(40000.0)
