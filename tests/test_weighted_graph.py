"""Tests for the adjacency-list weighted graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.weighted_graph import WeightedGraph


@pytest.fixture
def triangle_graph():
    graph = WeightedGraph(4)
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 2.0)
    graph.add_edge(0, 2, 3.0)
    return graph


class TestConstruction:
    def test_empty_graph(self):
        graph = WeightedGraph(3)
        assert graph.num_vertices == 3
        assert graph.num_edges == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            WeightedGraph(-1)

    def test_add_edge_is_undirected(self, triangle_graph):
        assert triangle_graph.weight(0, 1) == 1.0
        assert triangle_graph.weight(1, 0) == 1.0

    def test_self_loop_rejected(self):
        graph = WeightedGraph(2)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1, 1.0)

    def test_out_of_range_vertex_rejected(self):
        graph = WeightedGraph(2)
        with pytest.raises(IndexError):
            graph.add_edge(0, 5, 1.0)

    def test_overwriting_edge_does_not_double_count(self, triangle_graph):
        triangle_graph.add_edge(0, 1, 9.0)
        assert triangle_graph.num_edges == 3
        assert triangle_graph.weight(0, 1) == 9.0

    def test_from_edges_classmethod(self):
        graph = WeightedGraph.from_edges(3, [(0, 1, 0.5), (1, 2, 0.25)])
        assert graph.num_edges == 2
        assert graph.weight(1, 2) == 0.25

    def test_from_edge_list_and_matrix(self):
        weights = np.arange(9, dtype=float).reshape(3, 3)
        graph = WeightedGraph.from_edge_list_and_matrix(3, [(0, 2)], weights)
        assert graph.weight(0, 2) == weights[0, 2]


class TestQueries:
    def test_degree_and_weighted_degree(self, triangle_graph):
        assert triangle_graph.degree(0) == 2
        assert triangle_graph.weighted_degree(0) == pytest.approx(4.0)
        assert triangle_graph.degree(3) == 0

    def test_weighted_degrees_array(self, triangle_graph):
        degrees = triangle_graph.weighted_degrees()
        assert degrees.shape == (4,)
        assert degrees[3] == 0.0

    def test_neighbors(self, triangle_graph):
        assert dict(triangle_graph.neighbors(1)) == {0: 1.0, 2: 2.0}

    def test_edges_iterates_each_edge_once(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)

    def test_edge_weight_sum(self, triangle_graph):
        assert triangle_graph.edge_weight_sum() == pytest.approx(6.0)

    def test_missing_edge_raises(self, triangle_graph):
        with pytest.raises(KeyError):
            triangle_graph.weight(0, 3)

    def test_to_dense_round_trip(self, triangle_graph):
        dense = triangle_graph.to_dense()
        assert dense[0, 2] == 3.0
        assert dense[2, 0] == 3.0
        assert dense[0, 3] == 0.0

    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.add_edge(0, 3, 7.0)
        assert not triangle_graph.has_edge(0, 3)

    def test_subgraph_without_vertices(self, triangle_graph):
        sub = triangle_graph.subgraph_without_vertices([2])
        assert sub.num_edges == 1
        assert sub.has_edge(0, 1)
        assert not sub.has_edge(1, 2)
