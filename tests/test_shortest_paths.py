"""Tests for Dijkstra SSSP and APSP against scipy.

The APSP equivalence tests are parametrized over the ``kernel``
(``python``/``numpy``) and — through the shared ``backend`` fixture — over
the serial and process execution paths, so the picklable CSR chunk worker
used by :class:`~repro.parallel.scheduler.ProcessBackend` is exercised by
the tier-1 suite.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.graph.shortest_paths import all_pairs_shortest_paths, dijkstra, shortest_paths_from_sources
from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.kernels import KERNEL_NAMES
from repro.parallel.scheduler import ThreadBackend


def _random_graph(n: int, density: float, seed: int) -> WeightedGraph:
    rng = np.random.default_rng(seed)
    graph = WeightedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                graph.add_edge(u, v, float(rng.uniform(0.1, 5.0)))
    return graph


def _scipy_apsp(graph: WeightedGraph) -> np.ndarray:
    dense = graph.to_dense(fill=0.0)
    sparse = csr_matrix(dense)
    return shortest_path(sparse, method="D", directed=False)


class TestDijkstra:
    def test_path_through_cheaper_route(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 5.0)
        graph.add_edge(0, 2, 1.0)
        graph.add_edge(2, 1, 1.0)
        distances = dijkstra(graph, 0)
        assert distances[1] == pytest.approx(2.0)

    def test_unreachable_vertex_is_infinite(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 1.0)
        assert np.isinf(dijkstra(graph, 0)[2])

    def test_source_distance_is_zero(self):
        graph = _random_graph(10, 0.5, 0)
        assert dijkstra(graph, 3)[3] == 0.0

    def test_invalid_source_rejected(self):
        graph = WeightedGraph(2)
        with pytest.raises(IndexError):
            dijkstra(graph, 5)

    def test_negative_weights_rejected(self):
        graph = WeightedGraph(2)
        graph.add_edge(0, 1, -1.0)
        with pytest.raises(ValueError):
            dijkstra(graph, 0)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_scipy_on_random_graphs(self, seed):
        graph = _random_graph(25, 0.3, seed)
        expected = _scipy_apsp(graph)
        for source in range(0, 25, 5):
            np.testing.assert_allclose(dijkstra(graph, source), expected[source])


class TestAPSP:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_matches_scipy(self, kernel, backend):
        graph = _random_graph(30, 0.25, 7)
        distances = all_pairs_shortest_paths(graph, backend=backend, kernel=kernel)
        np.testing.assert_allclose(distances, _scipy_apsp(graph))

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_kernels_and_backends_byte_identical(self, kernel, backend):
        graph = _random_graph(26, 0.3, 21)
        reference = all_pairs_shortest_paths(graph, kernel="python")
        distances = all_pairs_shortest_paths(graph, backend=backend, kernel=kernel)
        assert np.array_equal(distances, reference)

    def test_subset_of_sources_on_backends(self, backend):
        graph = _random_graph(15, 0.4, 8)
        full = all_pairs_shortest_paths(graph)
        subset = shortest_paths_from_sources(graph, [1, 4, 9], backend=backend)
        np.testing.assert_allclose(subset, full[[1, 4, 9]])

    def test_symmetric_for_undirected_graph(self):
        graph = _random_graph(20, 0.4, 9)
        distances = all_pairs_shortest_paths(graph)
        np.testing.assert_allclose(distances, distances.T)

    def test_diagonal_is_zero(self):
        graph = _random_graph(15, 0.5, 2)
        assert np.all(np.diag(all_pairs_shortest_paths(graph)) == 0.0)

    def test_thread_backend_matches_serial(self):
        graph = _random_graph(20, 0.4, 4)
        serial = all_pairs_shortest_paths(graph)
        backend = ThreadBackend(num_workers=4)
        try:
            threaded = all_pairs_shortest_paths(graph, backend=backend)
        finally:
            backend.close()
        np.testing.assert_allclose(serial, threaded)

    def test_scipy_method_matches_dijkstra(self):
        graph = _random_graph(24, 0.3, 13)
        dijkstra_result = all_pairs_shortest_paths(graph, method="dijkstra")
        scipy_result = all_pairs_shortest_paths(graph, method="scipy")
        np.testing.assert_allclose(scipy_result, dijkstra_result, rtol=1e-9)

    def test_scipy_method_keeps_zero_weight_edges(self):
        graph = WeightedGraph(3)
        graph.add_edge(0, 1, 0.0)
        graph.add_edge(1, 2, 1.0)
        distances = all_pairs_shortest_paths(graph, method="scipy")
        assert distances[0, 1] == pytest.approx(0.0, abs=1e-9)
        assert distances[0, 2] == pytest.approx(1.0, abs=1e-9)

    def test_unknown_method_rejected(self):
        graph = _random_graph(5, 0.5, 1)
        with pytest.raises(ValueError):
            all_pairs_shortest_paths(graph, method="bellman-ford-johnson")

    def test_floyd_method_matches_dijkstra(self):
        graph = _random_graph(24, 0.3, 17)
        dijkstra_result = all_pairs_shortest_paths(graph, method="dijkstra")
        floyd_result = all_pairs_shortest_paths(graph, method="floyd")
        np.testing.assert_allclose(floyd_result, dijkstra_result, rtol=1e-9)

    def test_subset_of_sources(self):
        graph = _random_graph(12, 0.5, 5)
        full = all_pairs_shortest_paths(graph)
        subset = shortest_paths_from_sources(graph, [2, 7])
        np.testing.assert_allclose(subset, full[[2, 7]])

    def test_triangle_inequality(self):
        graph = _random_graph(18, 0.5, 11)
        distances = all_pairs_shortest_paths(graph)
        finite = np.isfinite(distances)
        n = graph.num_vertices
        for i in range(n):
            for j in range(n):
                for k in range(0, n, 5):
                    if finite[i, k] and finite[k, j]:
                        assert distances[i, j] <= distances[i, k] + distances[k, j] + 1e-9
