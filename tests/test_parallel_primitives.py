"""Tests for the Table I parallel primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.parallel.primitives import (
    parallel_filter,
    parallel_map,
    parallel_max,
    parallel_sort,
    parallel_top_k,
)
from repro.parallel.scheduler import SerialBackend, ThreadBackend


class TestFilter:
    def test_keeps_matching_elements_in_order(self):
        assert parallel_filter([3, 1, 4, 1, 5, 9], lambda x: x > 2) == [3, 4, 5, 9]

    def test_empty_input(self):
        assert parallel_filter([], lambda x: True) == []

    def test_with_thread_backend(self):
        backend = ThreadBackend(num_workers=4)
        try:
            result = parallel_filter(list(range(100)), lambda x: x % 2 == 0, backend)
        finally:
            backend.close()
        assert result == list(range(0, 100, 2))

    @given(st.lists(st.integers()))
    def test_matches_builtin_filter(self, values):
        assert parallel_filter(values, lambda x: x % 3 == 0) == [
            v for v in values if v % 3 == 0
        ]


class TestSortAndMax:
    def test_sort_is_stable(self):
        items = [(1, "a"), (0, "b"), (1, "c"), (0, "d")]
        result = parallel_sort(items, key=lambda pair: pair[0])
        assert result == [(0, "b"), (0, "d"), (1, "a"), (1, "c")]

    def test_sort_reverse(self):
        assert parallel_sort([2, 3, 1], reverse=True) == [3, 2, 1]

    def test_max_raises_on_empty(self):
        with pytest.raises(ValueError):
            parallel_max([])

    def test_max_with_key(self):
        assert parallel_max(["aa", "b", "cccc"], key=len) == "cccc"

    def test_max_ties_prefer_first(self):
        assert parallel_max([(5, "first"), (5, "second")], key=lambda x: x[0]) == (5, "first")

    def test_max_large_input_with_threads(self):
        backend = ThreadBackend(num_workers=4)
        try:
            values = list(range(5000))
            assert parallel_max(values, backend=backend) == 4999
        finally:
            backend.close()

    @given(st.lists(st.integers(), min_size=1))
    def test_max_matches_builtin(self, values):
        assert parallel_max(values) == max(values)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False)))
    def test_sort_matches_builtin(self, values):
        assert parallel_sort(values) == sorted(values)


class TestTopK:
    def test_returns_k_largest_descending(self):
        assert parallel_top_k([5, 1, 9, 3, 7], 3) == [9, 7, 5]

    def test_k_larger_than_input(self):
        assert parallel_top_k([2, 1], 10) == [2, 1]

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            parallel_top_k([1, 2], -1)

    @given(st.lists(st.integers()), st.integers(min_value=0, max_value=20))
    def test_is_prefix_of_descending_sort(self, values, k):
        assert parallel_top_k(values, k) == sorted(values, reverse=True)[:k]


class TestMap:
    def test_preserves_order(self):
        assert parallel_map([1, 2, 3], lambda x: x * x) == [1, 4, 9]

    def test_serial_and_thread_backends_agree(self):
        values = list(range(200))
        serial = parallel_map(values, lambda x: x + 1, SerialBackend())
        backend = ThreadBackend(num_workers=3)
        try:
            threaded = parallel_map(values, lambda x: x + 1, backend)
        finally:
            backend.close()
        assert serial == threaded
