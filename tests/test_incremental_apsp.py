"""Property tests for incremental APSP and the landmark-approximate mode.

The incremental engine's contract is the same as the TMFG warm starts':
the output is *byte-identical* to a cold ``dijkstra`` recompute after
every update, across both kernels and the serial/process backends — only
the cost may differ.  The landmark mode's contract is the opposite:
approximate, strictly opt-in, with a bound that tightens monotonically in
the landmark count and becomes exact at ``L >= n``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.incremental_apsp import IncrementalAPSP
from repro.graph.shortest_paths import (
    all_pairs_shortest_paths,
    available_apsp_methods,
    register_apsp_method,
    select_landmarks,
)
from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.kernels import KERNEL_NAMES


def _random_graph(n: int, density: float, seed: int) -> WeightedGraph:
    rng = np.random.default_rng(seed)
    graph = WeightedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                graph.add_edge(u, v, float(rng.uniform(0.1, 5.0)))
    return graph


def _random_absent_pair(graph: WeightedGraph, rng) -> tuple:
    n = graph.num_vertices
    while True:
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v:
            continue
        u, v = min(u, v), max(u, v)
        neighbors = {int(w) for w, _ in graph.neighbors(u)}
        if v not in neighbors:
            return u, v


def _clone_with_edges(graph: WeightedGraph, edges: dict) -> WeightedGraph:
    clone = WeightedGraph(graph.num_vertices)
    for (u, v), w in edges.items():
        clone.add_edge(u, v, w)
    return clone


class TestIncrementalByteIdentity:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_insertion_sequences(self, kernel, seed, backend):
        """Byte identity after every insertion of a randomized sequence."""
        rng = np.random.default_rng(seed)
        graph = _random_graph(30, 0.12, seed)
        engine = IncrementalAPSP()
        for _ in range(10):
            got = engine.update(graph, backend=backend, kernel=kernel)
            cold = all_pairs_shortest_paths(
                graph, backend=backend, method="dijkstra", kernel=kernel
            )
            assert np.array_equal(got, cold)
            u, v = _random_absent_pair(graph, rng)
            graph.add_edge(u, v, float(rng.uniform(0.05, 4.0)))

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_weight_changes_and_removals(self, kernel):
        """Increase, decrease, and drop edges; identity must hold throughout."""
        rng = np.random.default_rng(7)
        graph = _random_graph(28, 0.2, 7)
        edges = {
            (int(u), int(w)): float(weight)
            for u in range(graph.num_vertices)
            for w, weight in graph.neighbors(u)
            if u < int(w)
        }
        engine = IncrementalAPSP()
        for step in range(12):
            current = _clone_with_edges(graph, edges)
            got = engine.update(current, kernel=kernel)
            cold = all_pairs_shortest_paths(current, method="dijkstra", kernel=kernel)
            assert np.array_equal(got, cold)
            keys = sorted(edges)
            pick = keys[int(rng.integers(len(keys)))]
            action = step % 3
            if action == 0:
                edges[pick] = float(edges[pick] * rng.uniform(1.1, 2.0))
            elif action == 1:
                edges[pick] = float(edges[pick] * rng.uniform(0.3, 0.9))
            elif len(edges) > graph.num_vertices:
                del edges[pick]

    def test_unchanged_graph_reuses_everything(self):
        graph = _random_graph(20, 0.3, 3)
        engine = IncrementalAPSP()
        first = engine.update(graph)
        second = engine.update(graph)
        assert second is first
        assert engine.stats.unchanged_updates == 1
        assert engine.stats.reused_rows == graph.num_vertices

    def test_returned_matrices_never_mutate(self):
        """A kept reference must not change when later updates repair rows."""
        rng = np.random.default_rng(5)
        graph = _random_graph(22, 0.25, 5)
        engine = IncrementalAPSP()
        first = engine.update(graph)
        snapshot = first.copy()
        for _ in range(4):
            u, v = _random_absent_pair(graph, rng)
            graph.add_edge(u, v, 0.01)
            engine.update(graph)
        assert np.array_equal(first, snapshot)

    def test_size_change_triggers_cold_rebuild(self):
        engine = IncrementalAPSP()
        engine.update(_random_graph(12, 0.4, 1))
        bigger = _random_graph(15, 0.4, 2)
        got = engine.update(bigger)
        assert np.array_equal(got, all_pairs_shortest_paths(bigger))
        assert engine.stats.full_rebuilds == 2

    def test_reset_drops_state(self):
        graph = _random_graph(10, 0.5, 9)
        engine = IncrementalAPSP()
        engine.update(graph)
        engine.reset()
        assert engine.distances is None
        engine.update(graph)
        assert engine.stats.full_rebuilds == 2

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            IncrementalAPSP(rebuild_edge_fraction=1.5)
        with pytest.raises(ValueError):
            IncrementalAPSP(rebuild_row_fraction=0.0)

    def test_dispatcher_incremental_method(self, backend):
        """``method="incremental"`` + ``state=`` matches dijkstra exactly."""
        graph = _random_graph(18, 0.3, 11)
        engine = IncrementalAPSP()
        via_dispatch = all_pairs_shortest_paths(
            graph, backend=backend, method="incremental", state=engine
        )
        assert np.array_equal(via_dispatch, all_pairs_shortest_paths(graph))
        # Without state it is simply a cold dijkstra run.
        stateless = all_pairs_shortest_paths(graph, method="incremental")
        assert np.array_equal(stateless, all_pairs_shortest_paths(graph))
        with pytest.raises(TypeError):
            all_pairs_shortest_paths(graph, method="incremental", state=object())


class TestLandmarkMode:
    def test_upper_bound_and_exact_at_full_count(self):
        graph = _random_graph(40, 0.15, 2)
        exact = all_pairs_shortest_paths(graph)
        approx = all_pairs_shortest_paths(graph, method="landmark", landmarks=8)
        assert np.all(approx >= exact - 1e-9)
        full = all_pairs_shortest_paths(graph, method="landmark", landmarks=40)
        assert np.array_equal(full, exact)

    def test_error_is_monotone_in_landmark_count(self):
        graph = _random_graph(45, 0.12, 6)
        exact = all_pairs_shortest_paths(graph)
        previous = np.inf
        for count in (2, 4, 8, 16, 32):
            approx = all_pairs_shortest_paths(graph, method="landmark", landmarks=count)
            error = float(np.mean(np.abs(approx - exact)))
            assert error <= previous + 1e-12
            previous = error

    def test_estimates_shrink_pointwise_with_more_landmarks(self):
        """Nested landmark prefixes can only tighten the bound, entrywise."""
        graph = _random_graph(35, 0.15, 4)
        coarse = all_pairs_shortest_paths(graph, method="landmark", landmarks=4)
        fine = all_pairs_shortest_paths(graph, method="landmark", landmarks=12)
        assert np.all(fine <= coarse + 1e-12)

    def test_deterministic(self):
        graph = _random_graph(30, 0.2, 8)
        a = all_pairs_shortest_paths(graph, method="landmark", landmarks=6)
        b = all_pairs_shortest_paths(graph, method="landmark", landmarks=6)
        assert np.array_equal(a, b)

    def test_diagonal_zero_symmetric_and_edges_exact(self):
        graph = _random_graph(25, 0.25, 10)
        approx = all_pairs_shortest_paths(graph, method="landmark", landmarks=4)
        exact = all_pairs_shortest_paths(graph)
        assert np.all(np.diag(approx) == 0.0)
        np.testing.assert_array_equal(approx, approx.T)
        csr = graph.to_csr()
        heads = np.repeat(np.arange(csr.num_vertices), csr.degrees())
        # The direct-edge clamp: adjacent pairs are never estimated above
        # their edge weight (the exact distance may be lower still, via a
        # multi-hop detour, but never above it).
        assert np.all(approx[heads, csr.indices] <= csr.weights + 1e-12)

    def test_selection_is_nested(self):
        graph = _random_graph(30, 0.2, 12)
        few, _ = select_landmarks(graph, 4)
        more, _ = select_landmarks(graph, 9)
        assert more[: len(few)] == few

    def test_invalid_counts_rejected(self):
        graph = _random_graph(10, 0.5, 1)
        with pytest.raises(ValueError):
            all_pairs_shortest_paths(graph, method="landmark", landmarks=0)
        with pytest.raises(ValueError):
            select_landmarks(graph, 0)


class TestMethodRegistry:
    def test_builtins_registered(self):
        methods = available_apsp_methods()
        for name in ("dijkstra", "floyd", "scipy", "incremental", "landmark"):
            assert name in methods

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_apsp_method("dijkstra", lambda *a, **k: None)

    def test_custom_method_dispatches_and_validates_in_config(self):
        from repro.api.config import ClusteringConfig
        from repro.graph.shortest_paths import _APSP_DISPATCH

        def constant(graph, backend=None, kernel=None):
            n = graph.num_vertices
            return np.zeros((n, n))

        register_apsp_method("test-constant", constant)
        try:
            graph = _random_graph(6, 0.5, 3)
            result = all_pairs_shortest_paths(graph, method="test-constant")
            assert np.array_equal(result, np.zeros((6, 6)))
            # The config layer resolves against the live registry, so the
            # custom id validates without touching APSP_METHODS.
            config = ClusteringConfig(apsp_method="test-constant")
            assert config.apsp_method == "test-constant"
        finally:
            _APSP_DISPATCH.pop("test-constant", None)

    def test_unknown_method_error_lists_ids(self):
        graph = _random_graph(5, 0.5, 1)
        with pytest.raises(ValueError, match="'dijkstra'"):
            all_pairs_shortest_paths(graph, method="bellman-ford-johnson")


class TestStreamingIncrementalEquivalence:
    def test_incremental_stream_matches_cold_stream(self):
        """The streaming warm==cold guarantee extends to apsp_method="incremental"."""
        from repro.api.config import ClusteringConfig
        from repro.datasets.stocks import generate_regime_switching_stream
        from repro.streaming import StreamingPipeline

        stream = generate_regime_switching_stream(
            num_stocks=44, num_days=150, num_regimes=2, regime_length=80, seed=13
        )
        config = ClusteringConfig(
            num_clusters=4, warm_start=True, apsp_method="incremental"
        )
        incremental = StreamingPipeline(
            stream.returns, window=90, hop=15, config=config
        ).run()
        cold = StreamingPipeline(
            stream.returns, window=90, hop=15, num_clusters=4, warm_start=False
        ).run()
        assert incremental.num_ticks == cold.num_ticks >= 4
        for warm_tick, cold_tick in zip(incremental.ticks, cold.ticks):
            np.testing.assert_array_equal(warm_tick.labels, cold_tick.labels)
        assert incremental.apsp_stats is not None
        assert incremental.apsp_stats["updates"] == incremental.num_ticks
        assert cold.apsp_stats is None
