"""Tests for the three-level DBHT hierarchy and height assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import assign_vertices
from repro.core.direction import compute_directions
from repro.core.hierarchy import build_hierarchy
from repro.core.tmfg import construct_tmfg
from repro.graph.shortest_paths import all_pairs_shortest_paths
from repro.graph.weighted_graph import WeightedGraph


@pytest.fixture(scope="module")
def hierarchy_inputs(small_matrices_module):
    similarity, dissimilarity = small_matrices_module
    tmfg = construct_tmfg(similarity, prefix=4)
    directions = compute_directions(tmfg.bubble_tree, tmfg.graph)
    distance_graph = WeightedGraph(tmfg.graph.num_vertices)
    for u, v, _ in tmfg.graph.edges():
        distance_graph.add_edge(u, v, float(dissimilarity[u, v]))
    shortest_paths = all_pairs_shortest_paths(distance_graph)
    assignment = assign_vertices(tmfg.bubble_tree, directions, similarity, shortest_paths)
    dendrogram = build_hierarchy(assignment, shortest_paths)
    return assignment, shortest_paths, dendrogram


@pytest.fixture(scope="module")
def small_matrices_module():
    from repro.datasets.similarity import similarity_and_dissimilarity
    from repro.datasets.synthetic import make_time_series_dataset

    dataset = make_time_series_dataset(
        num_objects=60, length=48, num_classes=3, noise=1.0, seed=11
    )
    return similarity_and_dissimilarity(dataset.data)


class TestDendrogramShape:
    def test_dendrogram_is_complete(self, hierarchy_inputs):
        _, _, dendrogram = hierarchy_inputs
        assert dendrogram.is_complete
        assert dendrogram.num_internal == dendrogram.num_leaves - 1

    def test_heights_are_monotone(self, hierarchy_inputs):
        _, _, dendrogram = hierarchy_inputs
        assert dendrogram.heights_monotone()

    def test_group_roots_at_height_one(self, hierarchy_inputs):
        assignment, _, dendrogram = hierarchy_inputs
        groups = assignment.groups()
        # For every group with more than one vertex there must be a node of
        # height exactly 1 covering precisely that group's vertices.
        for group_id, vertices in groups.items():
            if len(vertices) < 2:
                continue
            found = False
            for node in dendrogram.internal_nodes():
                if node.height == pytest.approx(1.0):
                    leaves = set(dendrogram.leaves_under(node.id))
                    if leaves == set(vertices):
                        found = True
                        break
            assert found, f"group {group_id} has no height-1 root"

    def test_intra_group_heights_in_unit_interval(self, hierarchy_inputs):
        assignment, _, dendrogram = hierarchy_inputs
        num_groups = len(assignment.groups())
        for node in dendrogram.internal_nodes():
            level = node.metadata.get("level")
            if level in ("intra", "inter_bubble"):
                assert 0.0 < node.height <= 1.0 + 1e-12
            elif level == "inter_group":
                assert 2.0 <= node.height <= num_groups

    def test_inter_group_heights_count_groups(self, hierarchy_inputs):
        assignment, _, dendrogram = hierarchy_inputs
        groups = assignment.groups()
        root = dendrogram.node(dendrogram.root)
        if root.metadata.get("level") == "inter_group":
            assert root.height == pytest.approx(len(groups))

    def test_each_group_has_correct_number_of_internal_nodes(self, hierarchy_inputs):
        assignment, _, dendrogram = hierarchy_inputs
        groups = assignment.groups()
        for group_id, vertices in groups.items():
            count = sum(
                1
                for node in dendrogram.internal_nodes()
                if node.metadata.get("group") == group_id
                and node.metadata.get("level") in ("intra", "inter_bubble")
            )
            assert count == len(vertices) - 1

    def test_subgroup_vertices_merge_before_other_vertices(self, hierarchy_inputs):
        assignment, shortest_paths, dendrogram = hierarchy_inputs
        # Any intra-level node contains only vertices of a single subgroup.
        subgroups = assignment.subgroups()
        for node in dendrogram.internal_nodes():
            if node.metadata.get("level") != "intra":
                continue
            leaves = set(dendrogram.leaves_under(node.id))
            key = (node.metadata["group"], node.metadata["bubble"])
            assert leaves <= set(subgroups[key])

    def test_inter_bubble_nodes_contain_only_their_group(self, hierarchy_inputs):
        assignment, _, dendrogram = hierarchy_inputs
        groups = assignment.groups()
        for node in dendrogram.internal_nodes():
            if node.metadata.get("level") != "inter_bubble":
                continue
            leaves = set(dendrogram.leaves_under(node.id))
            assert leaves <= set(groups[node.metadata["group"]])


class TestDegenerateInputs:
    def test_single_group_single_bubble(self):
        # Four vertices: one bubble, one group; the dendrogram is a complete
        # binary merge of the four leaves.
        from repro.core.assignment import AssignmentResult

        assignment = AssignmentResult(
            group=np.zeros(4, dtype=int),
            bubble=np.zeros(4, dtype=int),
            converging_bubbles=[0],
            assigned_directly=np.ones(4, dtype=bool),
        )
        distances = np.array(
            [
                [0.0, 1.0, 2.0, 3.0],
                [1.0, 0.0, 1.5, 2.5],
                [2.0, 1.5, 0.0, 1.0],
                [3.0, 2.5, 1.0, 0.0],
            ]
        )
        dendrogram = build_hierarchy(assignment, distances)
        assert dendrogram.is_complete
        assert dendrogram.heights_monotone()
        root = dendrogram.node(dendrogram.root)
        assert root.height == pytest.approx(1.0)

    def test_two_groups(self):
        from repro.core.assignment import AssignmentResult

        group = np.array([0, 0, 1, 1])
        bubble = np.array([0, 0, 1, 1])
        assignment = AssignmentResult(
            group=group,
            bubble=bubble,
            converging_bubbles=[0, 1],
            assigned_directly=np.ones(4, dtype=bool),
        )
        distances = np.array(
            [
                [0.0, 1.0, 9.0, 9.0],
                [1.0, 0.0, 9.0, 9.0],
                [9.0, 9.0, 0.0, 1.0],
                [9.0, 9.0, 1.0, 0.0],
            ]
        )
        dendrogram = build_hierarchy(assignment, distances)
        assert dendrogram.is_complete
        root = dendrogram.node(dendrogram.root)
        assert root.metadata.get("level") == "inter_group"
        assert root.height == pytest.approx(2.0)
        # Cutting into two clusters recovers the groups.
        from repro.dendrogram.cut import cut_k

        labels = cut_k(dendrogram, 2)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_singleton_group(self):
        from repro.core.assignment import AssignmentResult

        group = np.array([0, 0, 0, 1])
        bubble = np.array([0, 0, 0, 1])
        assignment = AssignmentResult(
            group=group,
            bubble=bubble,
            converging_bubbles=[0, 1],
            assigned_directly=np.ones(4, dtype=bool),
        )
        rng = np.random.default_rng(0)
        raw = rng.uniform(1.0, 2.0, size=(4, 4))
        distances = (raw + raw.T) / 2
        np.fill_diagonal(distances, 0.0)
        dendrogram = build_hierarchy(assignment, distances)
        assert dendrogram.is_complete
        assert dendrogram.heights_monotone()
