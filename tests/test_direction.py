"""Tests for the bubble-tree edge direction (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bubble_tree import BubbleTree
from repro.core.direction import compute_directions, compute_directions_bfs
from repro.core.tmfg import construct_tmfg
from repro.graph.faces import triangle_key
from repro.graph.weighted_graph import WeightedGraph
from repro.parallel.cost_model import WorkSpanTracker

from tests.conftest import random_similarity_matrix


def figure2_graph_and_tree():
    """The TMFG of Figure 2(a) with edge weights 0.8 / 0.4 / 0.2.

    The construction order follows Example 1: start from the 4-clique
    {0,1,2,4}, insert 3 into {0,1,2} (the outer face), then 5 into {1,2,3}
    and 6 into the new outer face {0,1,3}.  The weights are assigned so that
    edges inside the ground-truth-ish core are heavy (0.8), cross edges are
    medium (0.4), and edges to the peripheral vertex 6 are light (0.2),
    consistent with the figure's description.
    """
    weights = {
        (0, 1): 0.8, (0, 2): 0.8, (1, 2): 0.8, (0, 4): 0.8, (1, 4): 0.4,
        (2, 4): 0.4, (0, 3): 0.8, (1, 3): 0.8, (2, 3): 0.4, (1, 5): 0.4,
        (2, 5): 0.4, (3, 5): 0.4, (0, 6): 0.2, (1, 6): 0.2, (3, 6): 0.2,
    }
    graph = WeightedGraph(7)
    for (u, v), w in weights.items():
        graph.add_edge(u, v, w)
    faces = [
        triangle_key(0, 1, 2),
        triangle_key(0, 1, 4),
        triangle_key(0, 2, 4),
        triangle_key(1, 2, 4),
    ]
    tree = BubbleTree([0, 1, 2, 4], faces)
    tree.insert(3, triangle_key(0, 1, 2), is_outer_face=True)
    tree.insert(5, triangle_key(1, 2, 3), is_outer_face=False)
    tree.insert(6, triangle_key(0, 1, 3), is_outer_face=True)
    return graph, tree


class TestPaperExample:
    def test_b2_is_the_only_converging_bubble(self):
        graph, tree = figure2_graph_and_tree()
        directions = compute_directions(tree, graph)
        converging = directions.converging_bubbles(tree)
        converging_sets = [set(tree.bubble(b).vertices) for b in converging]
        assert converging_sets == [{0, 1, 2, 3}]

    def test_example2_inval_exceeds_outval_for_b2(self):
        graph, tree = figure2_graph_and_tree()
        directions = compute_directions(tree, graph)
        b2 = next(b.id for b in tree.bubbles if set(b.vertices) == {0, 1, 2, 3})
        assert directions.in_values[b2] > directions.out_values[b2]
        assert directions.towards_child[b2] is True

    def test_bfs_baseline_gives_same_example_result(self):
        graph, tree = figure2_graph_and_tree()
        fast = compute_directions(tree, graph)
        slow = compute_directions_bfs(tree, graph)
        assert fast.towards_child == slow.towards_child


class TestAgainstBFSBaseline:
    @pytest.mark.parametrize("seed,prefix", [(0, 1), (1, 1), (2, 6), (3, 12)])
    def test_directions_match_on_random_inputs(self, seed, prefix):
        similarity = random_similarity_matrix(35, seed=seed)
        result = construct_tmfg(similarity, prefix=prefix)
        fast = compute_directions(result.bubble_tree, result.graph)
        slow = compute_directions_bfs(result.bubble_tree, result.graph)
        assert fast.towards_child == slow.towards_child

    @pytest.mark.parametrize("prefix", [1, 8])
    def test_in_and_out_values_match_bfs(self, small_matrices, prefix):
        similarity, _ = small_matrices
        result = construct_tmfg(similarity, prefix=prefix)
        fast = compute_directions(result.bubble_tree, result.graph)
        slow = compute_directions_bfs(result.bubble_tree, result.graph)
        for bubble_id in fast.in_values:
            assert fast.in_values[bubble_id] == pytest.approx(slow.in_values[bubble_id])
            assert fast.out_values[bubble_id] == pytest.approx(slow.out_values[bubble_id])

    def test_inval_plus_outval_identity(self, small_tmfg):
        # INVAL + OUTVAL + 2 * (triangle weight) = sum of corner degrees.
        graph = small_tmfg.graph
        tree = small_tmfg.bubble_tree
        directions = compute_directions(tree, graph)
        for bubble in tree.bubbles:
            if bubble.parent is None:
                continue
            triangle = tree.separating_triangle(bubble.id)
            vx, vy, vz = sorted(triangle)
            degree_sum = sum(graph.weighted_degree(v) for v in (vx, vy, vz))
            triangle_weight = (
                graph.weight(vx, vy) + graph.weight(vx, vz) + graph.weight(vy, vz)
            )
            total = (
                directions.in_values[bubble.id]
                + directions.out_values[bubble.id]
                + 2 * triangle_weight
            )
            assert total == pytest.approx(degree_sum)


class TestDirectedTreeProperties:
    def test_at_least_one_converging_bubble(self, small_tmfg):
        directions = compute_directions(small_tmfg.bubble_tree, small_tmfg.graph)
        assert len(directions.converging_bubbles(small_tmfg.bubble_tree)) >= 1

    def test_every_bubble_reaches_a_converging_bubble(self, small_tmfg):
        tree = small_tmfg.bubble_tree
        directions = compute_directions(tree, small_tmfg.graph)
        reach = directions.reachable_converging_bubbles(tree)
        for bubble in tree.bubbles:
            assert reach[bubble.id], f"bubble {bubble.id} reaches no converging bubble"

    def test_converging_bubble_reaches_only_itself(self, small_tmfg):
        tree = small_tmfg.bubble_tree
        directions = compute_directions(tree, small_tmfg.graph)
        reach = directions.reachable_converging_bubbles(tree)
        for bubble_id in directions.converging_bubbles(tree):
            assert reach[bubble_id] == {bubble_id}

    def test_out_degree_counts_are_consistent(self, batched_tmfg):
        tree = batched_tmfg.bubble_tree
        directions = compute_directions(tree, batched_tmfg.graph)
        total_out = sum(directions.out_degree(tree, b.id) for b in tree.bubbles)
        # Every tree edge contributes exactly one outgoing endpoint.
        assert total_out == tree.num_bubbles - 1

    def test_tracker_records_linear_work(self, small_tmfg):
        tracker = WorkSpanTracker()
        compute_directions(small_tmfg.bubble_tree, small_tmfg.graph, tracker=tracker)
        assert tracker.phase("bubble-tree").work == small_tmfg.bubble_tree.num_bubbles - 1
