"""Tests for BFS and connected components."""

from __future__ import annotations

import pytest

from repro.graph.traversal import bfs_order, connected_components, is_connected, reachable_set
from repro.graph.weighted_graph import WeightedGraph


@pytest.fixture
def two_component_graph():
    graph = WeightedGraph(6)
    graph.add_edge(0, 1, 1.0)
    graph.add_edge(1, 2, 1.0)
    graph.add_edge(3, 4, 1.0)
    return graph


class TestBFS:
    def test_visits_reachable_vertices_only(self, two_component_graph):
        assert set(bfs_order(two_component_graph, 0)) == {0, 1, 2}

    def test_starts_at_source(self, two_component_graph):
        assert bfs_order(two_component_graph, 3)[0] == 3

    def test_blocked_vertices_are_not_traversed(self, two_component_graph):
        assert set(bfs_order(two_component_graph, 0, blocked={1})) == {0}

    def test_blocked_source_rejected(self, two_component_graph):
        with pytest.raises(ValueError):
            bfs_order(two_component_graph, 0, blocked={0})

    def test_reachable_set_matches_bfs(self, two_component_graph):
        assert reachable_set(two_component_graph, 0) == set(bfs_order(two_component_graph, 0))


class TestComponents:
    def test_counts_components_including_isolated(self, two_component_graph):
        components = connected_components(two_component_graph)
        assert len(components) == 3  # {0,1,2}, {3,4}, {5}

    def test_skip_vertices_act_as_removed(self, two_component_graph):
        components = connected_components(two_component_graph, skip={1})
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 1, 1, 2]

    def test_is_connected_detects_disconnection(self, two_component_graph):
        assert not is_connected(two_component_graph)

    def test_is_connected_true_for_path(self):
        graph = WeightedGraph(4)
        for u in range(3):
            graph.add_edge(u, u + 1, 1.0)
        assert is_connected(graph)

    def test_empty_graph_is_connected(self):
        assert is_connected(WeightedGraph(0))
