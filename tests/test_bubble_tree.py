"""Tests for the bubble tree built during TMFG construction (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bubble_tree import BubbleTree
from repro.core.tmfg import construct_tmfg
from repro.graph.faces import triangle_key

from tests.conftest import random_similarity_matrix


def manual_tree():
    """The worked example of Section V-A (Example 1, Fig. 2).

    Start from the clique {0,1,2,4} with outer face {0,1,2}; insert 3 into
    {0,1,2}, then 5 into {1,2,3} and 6 into {0,1,3}.
    """
    faces = [
        triangle_key(0, 1, 2),
        triangle_key(0, 1, 4),
        triangle_key(0, 2, 4),
        triangle_key(1, 2, 4),
    ]
    tree = BubbleTree([0, 1, 2, 4], faces)
    tree.insert(3, triangle_key(0, 1, 2), is_outer_face=True)
    # After inserting 3 the outer face becomes {0,1,3} (Example 1), so the
    # insertion of 6 is an outer-face insertion while 5 goes into an inner face.
    tree.insert(5, triangle_key(1, 2, 3), is_outer_face=False)
    tree.insert(6, triangle_key(0, 1, 3), is_outer_face=True)
    return tree


class TestPaperExample:
    def test_bubble_vertex_sets(self):
        tree = manual_tree()
        vertex_sets = [set(b.vertices) for b in tree.bubbles]
        assert {0, 1, 2, 4} in vertex_sets
        assert {0, 1, 2, 3} in vertex_sets
        assert {1, 2, 3, 5} in vertex_sets
        assert {0, 1, 3, 6} in vertex_sets

    def test_edges_match_figure_2b(self):
        tree = manual_tree()
        # Figure 2(b): b1={0,1,2,4} and b4={1,2,3,5} are children of
        # b2={0,1,2,3}, and b3={0,1,3,6} is b2's parent (the root).
        b1 = next(b for b in tree.bubbles if set(b.vertices) == {0, 1, 2, 4})
        b2 = next(b for b in tree.bubbles if set(b.vertices) == {0, 1, 2, 3})
        b3 = next(b for b in tree.bubbles if set(b.vertices) == {0, 1, 3, 6})
        b4 = next(b for b in tree.bubbles if set(b.vertices) == {1, 2, 3, 5})
        assert b1.parent == b2.id
        assert b4.parent == b2.id
        assert b2.parent == b3.id
        assert tree.root_id == b3.id

    def test_separating_triangles(self):
        tree = manual_tree()
        b1 = next(b for b in tree.bubbles if set(b.vertices) == {0, 1, 2, 4})
        assert set(tree.separating_triangle(b1.id)) == {0, 1, 2}
        assert tree.interior_vertex(b1.id) == 4

    def test_invariants_hold(self):
        manual_tree().check_invariants()


class TestOuterFaceInsertion:
    def test_outer_face_insertion_changes_root(self):
        faces = [
            triangle_key(0, 1, 2),
            triangle_key(0, 1, 3),
            triangle_key(0, 2, 3),
            triangle_key(1, 2, 3),
        ]
        tree = BubbleTree([0, 1, 2, 3], faces)
        old_root = tree.root_id
        new_id = tree.insert(4, triangle_key(0, 1, 2), is_outer_face=True)
        assert tree.root_id == new_id
        assert tree.bubble(old_root).parent == new_id

    def test_inner_face_insertion_keeps_root(self):
        faces = [
            triangle_key(0, 1, 2),
            triangle_key(0, 1, 3),
            triangle_key(0, 2, 3),
            triangle_key(1, 2, 3),
        ]
        tree = BubbleTree([0, 1, 2, 3], faces)
        root = tree.root_id
        new_id = tree.insert(4, triangle_key(0, 1, 3), is_outer_face=False)
        assert tree.root_id == root
        assert tree.bubble(new_id).parent == root

    def test_outer_face_insertion_from_non_root_rejected(self):
        tree = manual_tree()
        # {1,2,5} is owned by a non-root bubble; claiming it is the outer face
        # must fail the consistency check.
        with pytest.raises(ValueError):
            tree.insert(9, triangle_key(1, 2, 5), is_outer_face=True)

    def test_unknown_face_rejected(self):
        tree = manual_tree()
        with pytest.raises(KeyError):
            tree.insert(9, triangle_key(0, 4, 6), is_outer_face=False)


class TestConstructionValidation:
    def test_initial_clique_must_have_four_vertices(self):
        with pytest.raises(ValueError):
            BubbleTree([0, 1, 2], [triangle_key(0, 1, 2)])

    def test_initial_faces_must_belong_to_clique(self):
        with pytest.raises(ValueError):
            BubbleTree([0, 1, 2, 3], [triangle_key(0, 1, 9)])


class TestFromTMFG:
    @pytest.mark.parametrize("prefix", [1, 4, 16])
    def test_one_bubble_per_inserted_vertex(self, small_matrices, prefix):
        similarity, _ = small_matrices
        n = similarity.shape[0]
        result = construct_tmfg(similarity, prefix=prefix)
        assert result.bubble_tree is not None
        assert result.bubble_tree.num_bubbles == n - 3
        result.bubble_tree.check_invariants()

    @pytest.mark.parametrize("prefix", [1, 8])
    def test_every_vertex_is_in_some_bubble(self, small_matrices, prefix):
        similarity, _ = small_matrices
        result = construct_tmfg(similarity, prefix=prefix)
        tree = result.bubble_tree
        for vertex in range(similarity.shape[0]):
            assert tree.bubbles_of_vertex(vertex), f"vertex {vertex} not in any bubble"

    def test_topological_order_starts_at_root(self, small_tmfg):
        tree = small_tmfg.bubble_tree
        order = tree.topological_order()
        assert order[0] == tree.root_id
        assert sorted(order) == list(range(tree.num_bubbles))

    def test_descendants_of_root_cover_all_vertices(self, small_tmfg):
        tree = small_tmfg.bubble_tree
        n = small_tmfg.graph.num_vertices
        assert tree.descendants_vertices(tree.root_id) == set(range(n))

    def test_tree_height_bounded_by_rounds_times_two(self, batched_tmfg):
        # Each round can increase the height by at most 2 (Section VI).
        tree = batched_tmfg.bubble_tree
        assert tree.height() <= 2 * batched_tmfg.rounds + 1

    def test_tree_edges_form_a_tree(self, small_tmfg):
        tree = small_tmfg.bubble_tree
        assert len(tree.edges()) == tree.num_bubbles - 1

    def test_random_matrix_invariants(self):
        similarity = random_similarity_matrix(40, seed=9)
        result = construct_tmfg(similarity, prefix=6)
        result.bubble_tree.check_invariants()
