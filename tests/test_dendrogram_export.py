"""Tests for dendrogram export utilities (Newick, cophenetic distances)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.cluster.hierarchy import cophenet, linkage as scipy_linkage
from scipy.spatial.distance import squareform

from repro.baselines.hac import hac_dendrogram
from repro.dendrogram.export import (
    cluster_membership_table,
    cophenetic_correlation,
    cophenetic_distances,
    to_newick,
)
from repro.dendrogram.node import Dendrogram


@pytest.fixture
def small_tree():
    dendrogram = Dendrogram(4)
    a = dendrogram.merge(0, 1, height=1.0)
    b = dendrogram.merge(2, 3, height=2.0)
    dendrogram.merge(a, b, height=3.0)
    return dendrogram


class TestNewick:
    def test_contains_all_leaves(self, small_tree):
        newick = to_newick(small_tree)
        for leaf in range(4):
            assert f"L{leaf}" in newick
        assert newick.endswith(";")

    def test_custom_leaf_names(self, small_tree):
        newick = to_newick(small_tree, leaf_names=["a", "b", "c", "d"])
        assert "a:" in newick and "d:" in newick

    def test_wrong_number_of_names_rejected(self, small_tree):
        with pytest.raises(ValueError):
            to_newick(small_tree, leaf_names=["a", "b"])

    def test_without_heights_has_no_colons(self, small_tree):
        newick = to_newick(small_tree, include_heights=False)
        assert ":" not in newick

    def test_branch_lengths_are_height_differences(self, small_tree):
        newick = to_newick(small_tree)
        # The (2,3) subtree sits at height 2 under a root at height 3.
        assert "(L2:2,L3:2):1" in newick

    def test_incomplete_dendrogram_rejected(self):
        dendrogram = Dendrogram(3)
        with pytest.raises(ValueError):
            to_newick(dendrogram)

    def test_single_leaf(self):
        assert to_newick(Dendrogram(1)) == "L0;"

    def test_parentheses_are_balanced(self, small_tree):
        newick = to_newick(small_tree)
        assert newick.count("(") == newick.count(")")


class TestCophenetic:
    def test_small_tree_values(self, small_tree):
        distances = cophenetic_distances(small_tree)
        assert distances[0, 1] == 1.0
        assert distances[2, 3] == 2.0
        assert distances[0, 2] == 3.0
        assert distances[0, 0] == 0.0
        np.testing.assert_array_equal(distances, distances.T)

    def test_matches_scipy_on_hac_dendrogram(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(15, 3))
        diff = points[:, None, :] - points[None, :, :]
        distances = np.sqrt((diff ** 2).sum(axis=-1))
        ours = hac_dendrogram(distances, method="average")
        our_cophenetic = cophenetic_distances(ours)
        scipy_result = scipy_linkage(squareform(distances, checks=False), method="average")
        scipy_cophenetic = squareform(cophenet(scipy_result))
        np.testing.assert_allclose(our_cophenetic, scipy_cophenetic, rtol=1e-8)

    def test_correlation_is_one_for_ultrametric_input(self, small_tree):
        cophenetic = cophenetic_distances(small_tree)
        assert cophenetic_correlation(small_tree, cophenetic) == pytest.approx(1.0)

    def test_correlation_rejects_wrong_shape(self, small_tree):
        with pytest.raises(ValueError):
            cophenetic_correlation(small_tree, np.zeros((2, 2)))

    def test_correlation_reasonable_for_hac(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(20, 2))
        diff = points[:, None, :] - points[None, :, :]
        distances = np.sqrt((diff ** 2).sum(axis=-1))
        dendrogram = hac_dendrogram(distances, method="complete")
        assert cophenetic_correlation(dendrogram, distances) > 0.5


class TestMembershipTable:
    def test_columns_match_individual_cuts(self, small_tree):
        from repro.dendrogram.cut import cut_k

        table = cluster_membership_table(small_tree, [1, 2, 4])
        assert table.shape == (4, 3)
        np.testing.assert_array_equal(table[:, 1], cut_k(small_tree, 2))

    def test_empty_cut_list(self, small_tree):
        table = cluster_membership_table(small_tree, [])
        assert table.shape == (4, 0)
