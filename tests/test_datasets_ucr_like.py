"""Tests for the UCR-like data-set registry (Table II)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ucr_like import UCR_LIKE_SPECS, list_dataset_ids, load_ucr_like


class TestRegistry:
    def test_has_all_18_datasets(self):
        assert list_dataset_ids() == list(range(1, 19))

    def test_table2_values_for_known_rows(self):
        assert UCR_LIKE_SPECS[6].name == "ECG5000"
        assert UCR_LIKE_SPECS[6].num_objects == 5000
        assert UCR_LIKE_SPECS[6].num_classes == 5
        assert UCR_LIKE_SPECS[17].name == "Crop"
        assert UCR_LIKE_SPECS[17].num_objects == 19412
        assert UCR_LIKE_SPECS[14].num_classes == 60

    def test_total_dataset_count_matches_paper(self):
        assert len(UCR_LIKE_SPECS) == 18


class TestLoading:
    def test_scale_reduces_size(self):
        full_spec = UCR_LIKE_SPECS[6]
        dataset = load_ucr_like(6, scale=0.05)
        assert dataset.num_objects < full_spec.num_objects
        assert dataset.num_objects >= 4 * full_spec.num_classes

    def test_class_count_is_preserved(self):
        for dataset_id in (1, 6, 14):
            dataset = load_ucr_like(dataset_id, scale=0.05)
            assert dataset.num_classes == UCR_LIKE_SPECS[dataset_id].num_classes

    def test_name_is_preserved(self):
        assert load_ucr_like(11, scale=0.2).name == "CBF"

    def test_deterministic_by_default(self):
        a = load_ucr_like(6, scale=0.03)
        b = load_ucr_like(6, scale=0.03)
        np.testing.assert_array_equal(a.data, b.data)

    def test_custom_seed_changes_data(self):
        a = load_ucr_like(6, scale=0.03, seed=1)
        b = load_ucr_like(6, scale=0.03, seed=2)
        assert not np.allclose(a.data, b.data)

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            load_ucr_like(99)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            load_ucr_like(6, scale=0.0)

    def test_minimum_length_enforced(self):
        dataset = load_ucr_like(17, scale=0.01)  # Crop has L=46; 1% would be < 1
        assert dataset.data.shape[1] >= 32
