"""Tests for the repro.analysis invariant checker (`repro lint`).

Each rule is exercised three ways against fixture snippets: a seeded
violation is detected, an inline ``# repro: allow[rule-id]`` pragma
suppresses it, and a clean variant passes.  On top of the per-rule
matrix: CLI exit codes (0 clean / 1 findings / 2 usage error), JSON
report round-trips, baseline files, the config-fingerprint regression
(a dummy field added to a fixture copy of the real config is caught),
the numpy-free import guarantee, and the meta-test that HEAD lints
clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    Finding,
    available_rules,
    default_rules,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import iter_python_files

SRC_DIR = Path(repro.__file__).resolve().parent.parent
PACKAGE_DIR = SRC_DIR / "repro"


def lint_source(tmp_path, source, *, relpath="fixture.py", rules=None):
    """Write ``source`` into the tmp tree and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint([str(tmp_path)], rule_ids=rules)


class TestRulePack:
    def test_rule_catalogue_is_the_documented_pack(self):
        assert available_rules() == (
            "async-blocking",
            "config-fingerprint",
            "hot-path-copy",
            "lock-across-await",
            "span-unclosed",
            "swallowed-exception",
        )
        assert [rule.id for rule in default_rules()] == list(available_rules())


class TestAsyncBlocking:
    def test_time_sleep_in_async_def_is_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(0.1)
            """,
            rules=["async-blocking"],
        )
        assert [f.rule for f in result.reported] == ["async-blocking"]
        assert "time.sleep" in result.reported[0].message

    def test_subprocess_open_and_fit_are_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import subprocess

            async def handler(estimator, payload):
                subprocess.run(["ls"])
                with open("x") as fh:
                    fh.read()
                estimator.fit(payload)
            """,
            rules=["async-blocking"],
        )
        messages = " / ".join(f.message for f in result.reported)
        assert len(result.reported) == 3
        assert "subprocess.run" in messages
        assert "open" in messages
        assert ".fit" in messages

    def test_pragma_suppresses(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(0.1)  # repro: allow[async-blocking]
            """,
            rules=["async-blocking"],
        )
        assert result.ok
        assert len(result.suppressed) == 1

    def test_clean_async_and_sync_variants_pass(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import asyncio
            import time

            async def handler():
                await asyncio.sleep(0.1)
                proc = await asyncio.subprocess.create_subprocess_exec("ls")
                reader, writer = await asyncio.open_connection("h", 1)

                def executor_job():
                    # A sync closure shipped to run_in_executor may block.
                    time.sleep(0.1)

                return executor_job

            def plain():
                time.sleep(0.1)
            """,
            rules=["async-blocking"],
        )
        assert result.ok, [f.message for f in result.findings]


class TestLockAcrossAwait:
    def test_sync_lock_with_block_spanning_await_is_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import threading

            _lock = threading.Lock()

            async def handler(queue):
                with _lock:
                    await queue.get()
            """,
            rules=["lock-across-await"],
        )
        assert [f.rule for f in result.reported] == ["lock-across-await"]

    def test_acquire_release_spanning_await_is_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            async def handler(self, queue):
                self.lock.acquire()
                await queue.get()
                self.lock.release()
            """,
            rules=["lock-across-await"],
        )
        assert len(result.reported) == 1

    def test_pragma_suppresses(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import threading

            _lock = threading.Lock()

            async def handler(queue):
                with _lock:  # repro: allow[lock-across-await]
                    await queue.get()
            """,
            rules=["lock-across-await"],
        )
        assert result.ok and len(result.suppressed) == 1

    def test_async_lock_and_released_before_await_pass(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import asyncio

            _alock = asyncio.Lock()

            async def handler(self, queue):
                async with _alock:
                    await queue.get()
                self.lock.acquire()
                self.counter += 1
                self.lock.release()
                await queue.get()
            """,
            rules=["lock-across-await"],
        )
        assert result.ok, [f.message for f in result.findings]


class TestHotPathCopy:
    def test_copies_in_hot_files_are_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import numpy as np

            def encode(array):
                contiguous = np.ascontiguousarray(array)
                duplicate = np.array(array)
                raw = array.tobytes()
                return contiguous, duplicate, raw
            """,
            relpath="serve/wire.py",
            rules=["hot-path-copy"],
        )
        assert len(result.reported) == 3
        assert {f.rule for f in result.reported} == {"hot-path-copy"}

    def test_same_code_outside_hot_paths_passes(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import numpy as np

            def encode(array):
                return np.ascontiguousarray(array), array.tobytes()
            """,
            relpath="experiments/figures.py",
            rules=["hot-path-copy"],
        )
        assert result.ok

    def test_pragma_and_copy_false_pass(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import numpy as np

            def fingerprint(array):
                view = np.array(array, copy=False)
                raw = array.tobytes()  # repro: allow[hot-path-copy]
                return view, raw
            """,
            relpath="cache/fingerprint.py",
            rules=["hot-path-copy"],
        )
        assert result.ok and len(result.suppressed) == 1


class TestSwallowedException:
    def test_silent_broad_handler_is_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def probe(task):
                try:
                    task()
                except Exception:
                    pass
                try:
                    task()
                except:
                    return None
            """,
            rules=["swallowed-exception"],
        )
        assert len(result.reported) == 2
        assert "bare except" in result.reported[1].message

    def test_handlers_that_surface_the_error_pass(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import logging

            def probe(task, stats):
                try:
                    task()
                except Exception:
                    logging.exception("task failed")
                try:
                    task()
                except Exception:
                    stats.errors += 1
                try:
                    task()
                except Exception as error:
                    return {"error": str(error)}
                try:
                    task()
                except Exception:
                    raise
                try:
                    task()
                except OSError:
                    pass
            """,
            rules=["swallowed-exception"],
        )
        assert result.ok, [f.message for f in result.findings]

    def test_pragma_suppresses(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def probe(task):
                try:
                    task()
                except Exception:  # repro: allow[swallowed-exception] - availability probe
                    return False
                return True
            """,
            rules=["swallowed-exception"],
        )
        assert result.ok and len(result.suppressed) == 1


class TestSpanUnclosed:
    def test_assigned_span_never_closed_is_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def leak(tracer):
                span = tracer.start_span("work")
                span.set_attribute("k", 1)
            """,
            rules=["span-unclosed"],
        )
        assert [f.rule for f in result.reported] == ["span-unclosed"]
        assert "'span'" in result.reported[0].message

    def test_bare_expression_and_argument_position_are_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def fire_and_forget(tracer, registry):
                tracer.start_span("a")
                registry.append(tracer.start_span("b"))
            """,
            rules=["span-unclosed"],
        )
        assert len(result.reported) == 2

    def test_cross_function_handoff_is_flagged(self, tmp_path):
        # The rule tracks one function at a time: a span assigned here but
        # ended elsewhere must be spelled as a return or pragma'd.
        result = lint_source(
            tmp_path,
            """\
            def start(tracer, box):
                box.span = tracer.start_span("work")

            def finish(box):
                box.span.end()
            """,
            rules=["span-unclosed"],
        )
        assert len(result.reported) == 1

    def test_pragma_suppresses(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def handoff(tracer, registry):
                registry.append(tracer.start_span("a"))  # repro: allow[span-unclosed]
            """,
            rules=["span-unclosed"],
        )
        assert result.ok
        assert len(result.suppressed) == 1

    def test_closed_spellings_pass(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def context_manager(tracer):
                with tracer.start_span("a"):
                    pass

            async def async_context_manager(tracer):
                async with tracer.start_span("b"):
                    pass

            def explicit_end(tracer):
                span = tracer.start_span("c")
                try:
                    pass
                finally:
                    span.end()

            def returned_directly(tracer):
                return tracer.start_span("d")

            def returned_by_name(tracer):
                span = tracer.start_span("e")
                span.set_attribute("k", 1)
                return span

            def entered_by_name(tracer):
                span = tracer.start_span("f")
                with span:
                    pass
            """,
            rules=["span-unclosed"],
        )
        assert result.ok
        assert not result.reported


COHERENT_CONFIG = """\
class ClusteringConfig:
    method: str = "tmfg-dbht"
    prefix: int = 1
    cache: bool = False
    seed: int = 0
"""

COHERENT_FINGERPRINT = """\
CACHE_KNOB_FIELDS = ("cache",)
FINGERPRINT_FIELDS = ("method", "prefix", "seed")
"""

COHERENT_CLI = """\
_FLAG_SPELLINGS = (
    ("method", "--method"),
    ("prefix", "--prefix"),
)

_CONFIG_FILE_ONLY_FIELDS = ("seed",)


def _config_from_args(args, base):
    changes = {}
    if args.method is not None:
        changes["method"] = args.method
    if args.prefix is not None:
        changes["prefix"] = args.prefix
    if args.no_cache:
        changes["cache"] = False
    return base.replace(**changes)
"""


def write_coherence_tree(tmp_path, config=COHERENT_CONFIG, fingerprint=COHERENT_FINGERPRINT, cli=COHERENT_CLI):
    (tmp_path / "config.py").write_text(config, encoding="utf-8")
    (tmp_path / "fingerprint.py").write_text(fingerprint, encoding="utf-8")
    (tmp_path / "cli.py").write_text(cli, encoding="utf-8")


class TestConfigFingerprintCoherence:
    def test_coherent_fixture_tree_passes(self, tmp_path):
        write_coherence_tree(tmp_path)
        result = run_lint([str(tmp_path)], rule_ids=["config-fingerprint"])
        assert result.ok, [f.message for f in result.findings]

    def test_field_missing_from_fingerprint_and_cli_is_flagged(self, tmp_path):
        write_coherence_tree(
            tmp_path, config=COHERENT_CONFIG + "    new_knob: float = 0.5\n"
        )
        result = run_lint([str(tmp_path)], rule_ids=["config-fingerprint"])
        messages = [f.message for f in result.reported]
        assert len(messages) == 2
        assert any("neither consumed by the cache fingerprint" in m for m in messages)
        assert any("no CLI wiring" in m for m in messages)
        assert all("new_knob" in m for m in messages)

    def test_stale_fingerprint_entry_is_flagged(self, tmp_path):
        write_coherence_tree(
            tmp_path,
            fingerprint='CACHE_KNOB_FIELDS = ("cache",)\nFINGERPRINT_FIELDS = ("method", "prefix", "seed", "retired")\n',
        )
        result = run_lint([str(tmp_path)], rule_ids=["config-fingerprint"])
        assert [f.rule for f in result.reported] == ["config-fingerprint"]
        assert "retired" in result.reported[0].message

    def test_field_in_both_tuples_is_flagged(self, tmp_path):
        write_coherence_tree(
            tmp_path,
            fingerprint='CACHE_KNOB_FIELDS = ("cache",)\nFINGERPRINT_FIELDS = ("method", "prefix", "seed", "cache")\n',
        )
        result = run_lint([str(tmp_path)], rule_ids=["config-fingerprint"])
        assert any("never both" in f.message for f in result.reported)

    def test_missing_fingerprint_fields_tuple_is_flagged(self, tmp_path):
        write_coherence_tree(tmp_path, fingerprint='CACHE_KNOB_FIELDS = ("cache",)\n')
        result = run_lint([str(tmp_path)], rule_ids=["config-fingerprint"])
        assert any("FINGERPRINT_FIELDS is missing" in f.message for f in result.reported)

    def test_config_file_only_overlap_with_flag_is_flagged(self, tmp_path):
        write_coherence_tree(
            tmp_path,
            cli=COHERENT_CLI.replace(
                '_CONFIG_FILE_ONLY_FIELDS = ("seed",)',
                '_CONFIG_FILE_ONLY_FIELDS = ("seed", "method")',
            ).replace(
                'FINGERPRINT_FIELDS', 'FINGERPRINT_FIELDS'
            ),
        )
        result = run_lint([str(tmp_path)], rule_ids=["config-fingerprint"])
        assert any("drop the exclusion" in f.message for f in result.reported)

    def test_dummy_field_in_copy_of_real_tree_is_caught(self, tmp_path):
        """The acceptance regression: copy the real config/fingerprint/cli
        modules, add one dataclass field to the copy, and the rule must
        flag both the fingerprint gap and the missing CLI wiring."""
        for relpath in ("api/config.py", "cache/fingerprint.py", "cli.py"):
            source = (PACKAGE_DIR / relpath).read_text(encoding="utf-8")
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")
        config_copy = tmp_path / "api/config.py"
        source = config_copy.read_text(encoding="utf-8")
        marker = "    method: str = DEFAULT_METHOD\n"
        assert marker in source, "config.py's first dataclass field moved; update the test"
        patched = source.replace(marker, marker + "    dummy_knob: float = 0.125\n", 1)
        config_copy.write_text(patched, encoding="utf-8")
        clean = run_lint([str(tmp_path)], rule_ids=["config-fingerprint"])
        messages = [f.message for f in clean.reported]
        assert len(messages) == 2, messages
        assert all("dummy_knob" in m for m in messages)

    def test_unpatched_copy_of_real_tree_passes(self, tmp_path):
        for relpath in ("api/config.py", "cache/fingerprint.py", "cli.py"):
            source = (PACKAGE_DIR / relpath).read_text(encoding="utf-8")
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")
        result = run_lint([str(tmp_path)], rule_ids=["config-fingerprint"])
        assert result.ok, [f.message for f in result.findings]


class TestPragmas:
    def test_wildcard_pragma_suppresses_any_rule(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(0.1)  # repro: allow[*]
            """,
            rules=["async-blocking"],
        )
        assert result.ok and len(result.suppressed) == 1

    def test_pragma_inside_string_literal_does_not_suppress(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(0.1); note = "# repro: allow[async-blocking]"
                return note
            """,
            rules=["async-blocking"],
        )
        assert not result.ok
        assert len(result.reported) == 1

    def test_pragma_for_a_different_rule_does_not_suppress(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(0.1)  # repro: allow[hot-path-copy]
            """,
            rules=["async-blocking"],
        )
        assert not result.ok


class TestEngine:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        result = lint_source(tmp_path, "def broken(:\n    pass\n")
        assert [f.rule for f in result.reported] == ["parse-error"]
        assert not result.ok

    def test_pycache_and_non_python_files_are_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("def broken(:", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("not python", encoding="utf-8")
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        files = list(iter_python_files([str(tmp_path)]))
        assert files == [str(tmp_path / "ok.py")]

    def test_unknown_rule_and_missing_path_raise(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            run_lint([str(tmp_path)], rule_ids=["no-such-rule"])
        with pytest.raises(ValueError, match="no such file"):
            run_lint([str(tmp_path / "missing")])

    def test_finding_json_round_trip(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(0.1)
            """,
        )
        document = json.loads(json.dumps(render_json(result)))
        assert document["version"] == 1
        assert document["ok"] is False
        assert document["counts"]["reported"] == 1
        restored = [Finding.from_dict(payload) for payload in document["findings"]]
        assert restored == result.findings
        with pytest.raises(ValueError, match="unknown Finding keys"):
            Finding.from_dict({**document["findings"][0], "surprise": 1})

    def test_render_text_includes_location_and_summary(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(0.1)
            """,
        )
        text = render_text(result)
        assert "fixture.py:4:" in text
        assert "[async-blocking]" in text
        assert "1 finding(s)" in text


class TestBaseline:
    def test_baseline_tolerates_known_findings(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(0.1)
            """,
        )
        assert not result.ok
        baseline_path = tmp_path / "baseline.json"
        assert write_baseline(str(baseline_path), result.findings) == 1
        rerun = run_lint([str(tmp_path)], baseline=load_baseline(str(baseline_path)))
        assert rerun.ok
        assert len(rerun.baselined) == 1

    def test_baseline_keys_survive_line_shifts(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            async def handler():
                time.sleep(0.1)
            """,
        )
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), result.findings)
        shifted = "# a new comment line\n" + (tmp_path / "fixture.py").read_text(
            encoding="utf-8"
        )
        (tmp_path / "fixture.py").write_text(shifted, encoding="utf-8")
        rerun = run_lint([str(tmp_path)], baseline=load_baseline(str(baseline_path)))
        assert rerun.ok

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ValueError, match="bad baseline file"):
            load_baseline(str(bad))


class TestLintCli:
    def seed_violation(self, tmp_path, rule):
        snippets = {
            "async-blocking": "import time\n\nasync def handler():\n    time.sleep(0.1)\n",
            "lock-across-await": (
                "import threading\n\n_lock = threading.Lock()\n\n"
                "async def handler(queue):\n    with _lock:\n        await queue.get()\n"
            ),
            "hot-path-copy": "def encode(array):\n    return array.tobytes()\n",
            "swallowed-exception": (
                "def probe(task):\n    try:\n        task()\n"
                "    except Exception:\n        pass\n"
            ),
            "config-fingerprint": (
                COHERENT_CONFIG + "    unwired: int = 3\n"
            ),
            "span-unclosed": (
                "def leak(tracer):\n"
                "    span = tracer.start_span('work')\n"
                "    span.set_attribute('k', 1)\n"
            ),
        }
        relpath = "serve/wire.py" if rule == "hot-path-copy" else "fixture.py"
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(snippets[rule], encoding="utf-8")
        if rule == "config-fingerprint":
            write_coherence_tree(tmp_path, config=snippets[rule])

    @pytest.mark.parametrize("rule", sorted(available_rules()))
    def test_exits_nonzero_on_each_seeded_rule_violation(self, tmp_path, rule, capsys):
        self.seed_violation(tmp_path, rule)
        exit_code = lint_main([str(tmp_path), "--rules", rule])
        captured = capsys.readouterr().out
        assert exit_code == 1
        assert f"[{rule}]" in captured

    def test_exits_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "missing")]) == 2
        assert lint_main([str(tmp_path), "--rules", "bogus"]) == 2
        bad = tmp_path / "bad-baseline.json"
        bad.write_text("[]", encoding="utf-8")
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(tmp_path), "--baseline", str(bad)]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in available_rules():
            assert rule in out

    def test_json_report_to_stdout_and_file(self, tmp_path, capsys):
        (tmp_path / "fixture.py").write_text(
            "import time\n\nasync def handler():\n    time.sleep(0.1)\n",
            encoding="utf-8",
        )
        assert lint_main([str(tmp_path), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["counts"]["reported"] == 1
        report_path = tmp_path / "report.json"
        assert lint_main([str(tmp_path), "--json", str(report_path)]) == 1
        on_disk = json.loads(report_path.read_text(encoding="utf-8"))
        assert on_disk["findings"] == document["findings"]

    def test_write_baseline_then_lint_with_it(self, tmp_path, capsys):
        (tmp_path / "fixture.py").write_text(
            "import time\n\nasync def handler():\n    time.sleep(0.1)\n",
            encoding="utf-8",
        )
        baseline_path = tmp_path / "baseline.json"
        assert lint_main([str(tmp_path), "--write-baseline", str(baseline_path)]) == 0
        assert lint_main([str(tmp_path), "--baseline", str(baseline_path)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out


class TestHeadIsClean:
    def test_repro_lint_is_clean_on_head(self):
        """The meta-test: the shipped tree must pass its own checker."""
        result = run_lint([str(PACKAGE_DIR)])
        assert result.ok, "\n" + render_text(result)
        assert result.files_checked > 80
        # The deliberate, justified suppressions on HEAD stay accounted:
        # growing this number needs a reason in review.
        assert len(result.suppressed) == 7

    def test_lint_runs_without_numpy(self, tmp_path):
        """`python -m repro lint` must work on a bare interpreter: the CI
        lint job installs no numpy, and this subprocess proves importing
        repro + the analysis engine never touches it."""
        stub_dir = tmp_path / "stubs"
        stub_dir.mkdir()
        (stub_dir / "numpy.py").write_text(
            'raise ImportError("numpy must not be imported by repro lint")\n',
            encoding="utf-8",
        )
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(stub_dir), str(SRC_DIR)])
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(tmp_path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert completed.returncode == 0, completed.stderr
        assert "0 finding(s)" in completed.stdout
