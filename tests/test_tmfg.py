"""Tests for TMFG construction (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tmfg import TMFGResult, construct_tmfg
from repro.graph.faces import triangle_corners, triangle_key, child_faces
from repro.graph.planarity import is_planar
from repro.metrics.edge_sum import edge_weight_sum_ratio
from repro.parallel.cost_model import WorkSpanTracker

from tests.conftest import random_similarity_matrix


def reference_sequential_tmfg(similarity: np.ndarray):
    """Straightforward re-implementation of the sequential TMFG for cross-checks.

    Follows Massara et al.: start from the 4 vertices with the largest row
    sums, then repeatedly insert the vertex-face pair with the largest gain,
    scanning every face and every remaining vertex each round.
    """
    n = similarity.shape[0]
    row_sums = similarity.sum(axis=1) - np.diag(similarity)
    clique = sorted(np.argsort(row_sums, kind="stable")[-4:].tolist())
    edges = set()
    for i in range(4):
        for j in range(i + 1, 4):
            edges.add((min(clique[i], clique[j]), max(clique[i], clique[j])))
    faces = {
        triangle_key(clique[0], clique[1], clique[2]),
        triangle_key(clique[0], clique[1], clique[3]),
        triangle_key(clique[0], clique[2], clique[3]),
        triangle_key(clique[1], clique[2], clique[3]),
    }
    remaining = [v for v in range(n) if v not in clique]
    while remaining:
        best = None
        for face in sorted(faces, key=lambda f: tuple(sorted(f))):
            corners = triangle_corners(face)
            for vertex in remaining:
                gain = sum(similarity[c, vertex] for c in corners)
                if best is None or gain > best[0]:
                    best = (gain, vertex, face)
        _, vertex, face = best
        for corner in triangle_corners(face):
            edges.add((min(vertex, corner), max(vertex, corner)))
        faces.remove(face)
        for new_face in child_faces(face, vertex):
            faces.add(new_face)
        remaining.remove(vertex)
    return edges


class TestStructure:
    @pytest.mark.parametrize("prefix", [1, 3, 10, 50])
    def test_edge_count_is_maximal_planar(self, small_matrices, prefix):
        similarity, _ = small_matrices
        n = similarity.shape[0]
        result = construct_tmfg(similarity, prefix=prefix)
        assert result.graph.num_edges == 3 * n - 6

    @pytest.mark.parametrize("prefix", [1, 7])
    def test_output_is_planar(self, small_matrices, prefix):
        similarity, _ = small_matrices
        result = construct_tmfg(similarity, prefix=prefix)
        assert is_planar(result.graph)

    def test_every_vertex_is_inserted_once(self, small_matrices):
        similarity, _ = small_matrices
        result = construct_tmfg(similarity, prefix=5)
        inserted = [vertex for vertex, _ in result.insertion_order]
        assert sorted(inserted + list(result.initial_clique)) == list(
            range(similarity.shape[0])
        )
        assert len(set(inserted)) == len(inserted)

    def test_edge_weights_come_from_similarity(self, small_matrices):
        similarity, _ = small_matrices
        result = construct_tmfg(similarity, prefix=1)
        for u, v, weight in result.graph.edges():
            assert weight == pytest.approx(similarity[u, v])

    def test_initial_clique_has_largest_row_sums(self, small_matrices):
        similarity, _ = small_matrices
        result = construct_tmfg(similarity, prefix=1)
        row_sums = similarity.sum(axis=1) - np.diag(similarity)
        top4 = set(np.argsort(row_sums)[-4:].tolist())
        assert set(result.initial_clique) == top4

    def test_rounds_decrease_with_larger_prefix(self, small_matrices):
        similarity, _ = small_matrices
        sequential = construct_tmfg(similarity, prefix=1)
        batched = construct_tmfg(similarity, prefix=10)
        assert batched.rounds < sequential.rounds
        assert sequential.rounds == similarity.shape[0] - 4

    def test_minimum_input_size(self):
        similarity = random_similarity_matrix(4, seed=1)
        result = construct_tmfg(similarity, prefix=1)
        assert result.graph.num_edges == 6
        assert result.rounds == 0

    def test_five_vertices(self):
        similarity = random_similarity_matrix(5, seed=2)
        result = construct_tmfg(similarity, prefix=1)
        assert result.graph.num_edges == 9
        assert result.rounds == 1

    def test_invalid_prefix_rejected(self, small_matrices):
        similarity, _ = small_matrices
        with pytest.raises(ValueError):
            construct_tmfg(similarity, prefix=0)

    def test_too_small_matrix_rejected(self):
        with pytest.raises(Exception):
            construct_tmfg(np.eye(3))

    def test_tracker_records_tmfg_phase(self, small_matrices):
        similarity, _ = small_matrices
        tracker = WorkSpanTracker()
        construct_tmfg(similarity, prefix=5, tracker=tracker)
        assert tracker.phase("tmfg").work > 0
        assert tracker.phase("tmfg").span > 0

    def test_no_bubble_tree_when_disabled(self, small_matrices):
        similarity, _ = small_matrices
        result = construct_tmfg(similarity, prefix=1, build_bubble_tree=False)
        assert result.bubble_tree is None


class TestAgainstReference:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_prefix_one_matches_reference_sequential_tmfg(self, seed):
        similarity = random_similarity_matrix(18, seed=seed)
        result = construct_tmfg(similarity, prefix=1)
        expected_edges = reference_sequential_tmfg(similarity)
        actual_edges = {(min(u, v), max(u, v)) for u, v, _ in result.graph.edges()}
        assert actual_edges == expected_edges

    def test_prefix_one_matches_reference_on_correlation_data(self, small_matrices):
        similarity, _ = small_matrices
        subset = similarity[:20, :20]
        result = construct_tmfg(subset, prefix=1)
        expected_edges = reference_sequential_tmfg(subset)
        actual_edges = {(min(u, v), max(u, v)) for u, v, _ in result.graph.edges()}
        assert actual_edges == expected_edges


class TestQualityTradeoff:
    def test_batched_edge_sum_close_to_sequential(self, medium_matrices):
        similarity, _ = medium_matrices
        sequential = construct_tmfg(similarity, prefix=1, build_bubble_tree=False)
        for prefix in (5, 20):
            batched = construct_tmfg(similarity, prefix=prefix, build_bubble_tree=False)
            ratio = edge_weight_sum_ratio(batched.graph, sequential.graph)
            # The paper reports 92-100% of the sequential TMFG edge weight.
            assert 0.85 <= ratio <= 1.05

    def test_prefix_larger_than_n_still_terminates(self):
        similarity = random_similarity_matrix(12, seed=4)
        result = construct_tmfg(similarity, prefix=1000)
        assert result.graph.num_edges == 3 * 12 - 6
        # The first batch can insert at most as many vertices as there are
        # faces, so more than one round may still be needed, but far fewer
        # than n.
        assert result.rounds <= 12 - 4
