"""Tests for repro.serve.fleet: ring, supervisor, and router.

Three layers:

* pure ring/affinity-key unit tests (no processes);
* proxy-mechanics tests against a canned-response fake replica, which is
  the one place true *byte* identity is assertable (real fits carry
  per-request timings, so two responses never match byte-for-byte even
  from a single process);
* full-fleet integration: real ``repro serve`` replica subprocesses
  behind the router — affinity, cache locality, crash failover, restart
  supervision, drain.
"""

import asyncio
import json
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.serve import ServeClient, build_fleet
from repro.serve.fleet.ring import rendezvous_rank, request_affinity_key, spread
from repro.serve.fleet.router import FleetRouter
from repro.serve.fleet.supervisor import ReplicaInfo, ReplicaSupervisor
from repro.serve.server import ClusteringServer
from repro.serve.wire import WIRE_CONTENT_TYPE, encode_request

MEMBERS = [f"replica-{i}" for i in range(4)]


def _matrix(seed: int = 0, n: int = 24):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 8))


KMEANS = {"num_clusters": 2, "method": "kmeans", "seed": 0}


class TestRendezvousRing:
    def test_rank_is_deterministic_and_total(self):
        ranked = rendezvous_rank("key-1", MEMBERS)
        assert ranked == rendezvous_rank("key-1", list(reversed(MEMBERS)))
        assert sorted(ranked) == sorted(MEMBERS)

    def test_removing_home_promotes_second_choice(self):
        # The heart of consistent failover: dropping a key's home replica
        # must hand the key to its *old second choice*, and keys homed
        # elsewhere must not move at all.
        for key in (f"key-{i}" for i in range(50)):
            full = rendezvous_rank(key, MEMBERS)
            survivors = [m for m in MEMBERS if m != full[0]]
            assert rendezvous_rank(key, survivors) == full[1:]

    def test_unrelated_keys_stay_put_when_member_leaves(self):
        keys = [f"key-{i}" for i in range(200)]
        gone = MEMBERS[0]
        survivors = MEMBERS[1:]
        for key in keys:
            before = rendezvous_rank(key, MEMBERS)[0]
            after = rendezvous_rank(key, survivors)[0]
            if before != gone:
                assert after == before

    def test_spread_is_roughly_balanced(self):
        keys = [f"key-{i}" for i in range(400)]
        counts = spread(keys, MEMBERS)
        assert sum(counts.values()) == len(keys)
        # 400 keys over 4 members: each should land well away from 0.
        assert min(counts.values()) > 40

    def test_restarted_member_gets_its_keys_back(self):
        keys = [f"key-{i}" for i in range(100)]
        before = {key: rendezvous_rank(key, MEMBERS)[0] for key in keys}
        after = {key: rendezvous_rank(key, list(MEMBERS))[0] for key in keys}
        assert before == after


class TestAffinityKey:
    def test_json_bodies_key_on_raw_bytes(self):
        body = b'{"matrix": [[0, 1], [1, 0]], "config": {}}'
        assert request_affinity_key(body, "application/json").startswith("raw:")
        assert request_affinity_key(body, "application/json") == request_affinity_key(
            body, "application/json"
        )
        assert request_affinity_key(body) != request_affinity_key(body + b" ")

    def test_binary_bodies_key_on_content(self):
        matrix = np.asarray(_matrix(3), dtype=float, order="C")
        frame_a = encode_request(matrix, {"num_clusters": 3})
        frame_b = encode_request(np.asarray(matrix, order="F"), {"num_clusters": 3})
        key_a = request_affinity_key(frame_a, WIRE_CONTENT_TYPE)
        key_b = request_affinity_key(frame_b, WIRE_CONTENT_TYPE)
        assert key_a.startswith("content:")
        # Same matrix content + config -> same key even if the frames were
        # encoded from differently-laid-out arrays.
        assert key_a == key_b
        different = encode_request(matrix, {"num_clusters": 4})
        assert request_affinity_key(different, WIRE_CONTENT_TYPE) != key_a

    def test_malformed_binary_falls_back_to_raw(self):
        assert request_affinity_key(b"not a frame", WIRE_CONTENT_TYPE).startswith("raw:")


class _FakeSupervisor:
    """The supervisor surface the router needs, with no real processes."""

    def __init__(self, replicas):
        self.workers = len(replicas)
        self._replicas = list(replicas)

    async def start(self):
        pass

    async def wait_ready(self, count=None, timeout=120.0):
        pass

    async def stop(self):
        pass

    def ready_replicas(self):
        return list(self._replicas)

    @property
    def restarts_total(self):
        return 0

    def status(self):
        return [
            {"id": r.replica_id, "state": "ready", "port": r.port, "pid": r.pid,
             "spawns": 1, "restarts": 0, "last_exit_code": None}
            for r in self._replicas
        ]


class _CannedReplica:
    """A TCP server that answers every request with fixed raw HTTP bytes."""

    def __init__(self, raw_response: bytes):
        self.raw_response = raw_response
        self.requests = []
        self._server = socket.create_server(("127.0.0.1", 0))
        self.port = self._server.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            with conn:
                chunks = b""
                conn.settimeout(5.0)
                while b"\r\n\r\n" not in chunks:
                    chunks += conn.recv(65536)
                head, _, rest = chunks.partition(b"\r\n\r\n")
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                while len(rest) < length:
                    rest += conn.recv(65536)
                self.requests.append((head, rest))
                conn.sendall(self.raw_response)

    def close(self):
        self._server.close()


def _raw_post(port: int, body: bytes, headers: dict) -> bytes:
    """One raw POST /cluster; returns the raw response bytes."""
    with socket.create_connection(("127.0.0.1", port), timeout=30.0) as conn:
        head = f"POST /cluster HTTP/1.1\r\nhost: x\r\ncontent-length: {len(body)}\r\n"
        for name, value in headers.items():
            head += f"{name}: {value}\r\n"
        conn.sendall(head.encode() + b"\r\n" + body)
        conn.shutdown(socket.SHUT_WR)
        raw = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                return raw
            raw += chunk


class TestRouterProxyMechanics:
    CANNED = (
        b"HTTP/1.1 200 OK\r\n"
        b"content-type: application/json\r\n"
        b"server: repro-serve/0.0-canned\r\n"
        b"x-weird-header: kept \r\n"
        b"content-length: 17\r\n"
        b"connection: close\r\n"
        b"\r\n"
        b'{"canned": true}\n'
    )

    def test_routed_response_is_the_replica_bytes_verbatim(self):
        replica = _CannedReplica(self.CANNED)
        router = FleetRouter(
            _FakeSupervisor([ReplicaInfo("replica-0", replica.port, None)]), port=0
        )
        handle = router.start_in_background()
        try:
            raw = _raw_post(handle.port, b'{"matrix": [[0]]}',
                            {"content-type": "application/json"})
            # Byte-for-byte: status line, header order, casing, trailing
            # spaces, body — nothing re-rendered by the router.
            assert raw == self.CANNED
            head, body = replica.requests[0]
            assert body == b'{"matrix": [[0]]}'
            assert b"content-type: application/json" in head
        finally:
            handle.stop()
            replica.close()

    def test_failover_retries_next_ring_node_once(self):
        replica = _CannedReplica(self.CANNED)
        # A port that refuses connections: bind-and-close.
        probe = socket.create_server(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        body = b'{"matrix": [[0]]}'
        key = request_affinity_key(body, "application/json")
        live = ReplicaInfo("live", replica.port, None)
        dead = ReplicaInfo("dead", dead_port, None)
        # Name the dead replica so the ring ranks it first for this body.
        first = rendezvous_rank(key, ["live", "dead"])[0]
        if first == "live":
            live, dead = (ReplicaInfo("dead", replica.port, None),
                          ReplicaInfo("live", dead_port, None))
        router = FleetRouter(_FakeSupervisor([live, dead]), port=0)
        handle = router.start_in_background()
        try:
            raw = _raw_post(handle.port, body, {"content-type": "application/json"})
            assert raw == self.CANNED
            assert router.failovers_total == 1
        finally:
            handle.stop()
            replica.close()

    def test_no_ready_replica_answers_503_after_grace(self):
        router = FleetRouter(_FakeSupervisor([]), port=0, no_replica_grace=0.2)
        handle = router.start_in_background()
        try:
            raw = _raw_post(handle.port, b"{}", {"content-type": "application/json"})
            assert raw.startswith(b"HTTP/1.1 503")
            assert b"Retry-After" in raw or b"retry-after" in raw
            assert router.unrouted_total == 1
        finally:
            handle.stop()

    def test_unknown_route_is_answered_by_the_router(self):
        router = FleetRouter(_FakeSupervisor([]), port=0)
        handle = router.start_in_background()
        try:
            with ServeClient("127.0.0.1", handle.port) as client:
                from repro.serve import ServerError

                with pytest.raises(ServerError) as excinfo:
                    client.request("GET", "/nope")
                assert excinfo.value.status == 404
        finally:
            handle.stop()


def _normalized(envelope: dict) -> dict:
    """A served envelope with its per-request timing fields removed.

    Everything else — labels, config echo, extras, batch shape — must be
    identical between a routed and a direct response.
    """
    doc = json.loads(json.dumps(envelope))
    doc.get("result", {}).pop("step_seconds", None)
    serving = doc.get("serving", {})
    serving.pop("queue_seconds", None)
    serving.pop("fit_seconds", None)
    return doc


@pytest.fixture(scope="module")
def fleet():
    """One 2-replica fleet shared by the integration tests."""
    router = build_fleet(
        2,
        ["--clusters", "2", "--method", "kmeans", "--max-wait-ms", "2"],
        port=0,
        stagger_seconds=0.05,
        backoff_base_seconds=0.2,
    )
    handle = router.start_in_background()
    yield router
    handle.stop()


class TestFleetIntegration:
    def test_healthz_reports_fleet_shape(self, fleet):
        with ServeClient("127.0.0.1", fleet.port) as client:
            payload = client.wait_healthy(30)
        assert payload["status"] == "ok"
        assert payload["role"] == "fleet-router"
        assert payload["workers"] == 2
        assert payload["ready_replicas"] == 2
        assert isinstance(payload["pid"], int)
        assert payload["version"]
        assert payload["uptime_seconds"] >= 0
        states = {entry["state"] for entry in payload["replicas"]}
        assert states == {"ready"}

    def test_routed_fit_matches_direct_fit(self, fleet):
        matrix = _matrix(7)
        with ClusteringServer(port=0, max_wait_ms=2.0).start_in_background() as direct:
            with ServeClient("127.0.0.1", direct.port) as client:
                direct_json = client.cluster(matrix, KMEANS)
                direct_binary = client.cluster(matrix, KMEANS, binary=True)
        with ServeClient("127.0.0.1", fleet.port) as client:
            routed_json = client.cluster(matrix, KMEANS)
            routed_binary = client.cluster(matrix, KMEANS, binary=True)
        assert _normalized(routed_json) == _normalized(direct_json)
        assert _normalized(routed_binary) == _normalized(direct_binary)

    def test_identical_requests_share_a_replica_and_hit_cache(self, fleet):
        matrix = _matrix(11)
        with ServeClient("127.0.0.1", fleet.port) as client:
            for _ in range(3):
                client.cluster(matrix, KMEANS, binary=True)
            metrics = client.metrics()
        routed = {name: doc["routed_total"] for name, doc in metrics["replicas"].items()}
        # All three identical bodies must have landed on one replica...
        homes = [name for name, count in routed.items() if count >= 3]
        assert homes, f"no single replica saw all 3 identical requests: {routed}"
        # ...whose result cache served the repeats.
        home = metrics["replicas"][homes[0]]["metrics"]
        assert home["cache"]["hits"] >= 2

    def test_distinct_requests_use_both_replicas(self, fleet):
        with ServeClient("127.0.0.1", fleet.port) as client:
            before = client.metrics()
            for seed in range(8):
                client.cluster(_matrix(100 + seed, n=12), KMEANS, binary=True)
            after = client.metrics()
        gained = {
            name: after["replicas"][name]["routed_total"]
            - before["replicas"][name]["routed_total"]
            for name in after["replicas"]
        }
        assert sum(gained.values()) == 8
        assert all(count > 0 for count in gained.values()), gained

    def test_replica_kill_fails_over_and_restarts(self, fleet):
        with ServeClient("127.0.0.1", fleet.port) as client:
            client.wait_healthy(30)
            restarts_before = fleet.supervisor.restarts_total
            victim = fleet.supervisor.ready_replicas()[0]
            os.kill(victim.pid, signal.SIGKILL)
            # Every request during the outage must still be answered: the
            # ring fails the victim's keys over to the survivor, so no
            # accepted request is lost.
            for seed in range(6):
                envelope = client.cluster(_matrix(200 + seed, n=12), KMEANS)
                assert envelope["result"]["labels"] is not None
            deadline = time.time() + 30
            while time.time() < deadline:
                if (
                    fleet.supervisor.restarts_total > restarts_before
                    and len(fleet.supervisor.ready_replicas()) == 2
                ):
                    break
                time.sleep(0.1)
            assert fleet.supervisor.restarts_total > restarts_before
            assert len(fleet.supervisor.ready_replicas()) == 2
            metrics = client.metrics()
            assert metrics["fleet"]["restarts_total"] >= 1


class TestSupervisorUnit:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ReplicaSupervisor(0)

    def test_replica_command_pins_host_and_ephemeral_port(self):
        supervisor = ReplicaSupervisor(1, ["--clusters", "3"])
        command = supervisor._replica_command(supervisor._slots[0])
        assert command[1:5] == ["-m", "repro", "serve", "--host"]
        assert "--port" in command and command[command.index("--port") + 1] == "0"
        assert command[-2:] == ["--clusters", "3"]

    def test_replica_command_substitutes_replica_id_placeholder(self):
        supervisor = ReplicaSupervisor(
            2, ["--trace-log", "traces-{replica_id}.jsonl"]
        )
        commands = [
            supervisor._replica_command(slot) for slot in supervisor._slots
        ]
        assert commands[0][-1] == "traces-replica-0.jsonl"
        assert commands[1][-1] == "traces-replica-1.jsonl"

    def test_crash_looping_replica_backs_off(self):
        async def scenario():
            # A replica argv that makes `repro serve` exit 2 immediately
            # (invalid flag): the babysitter must keep backing off, never
            # report ready, and record its spawn attempts.
            supervisor = ReplicaSupervisor(
                1,
                ["--definitely-not-a-flag"],
                stagger_seconds=0.0,
                backoff_base_seconds=0.05,
                backoff_cap_seconds=0.1,
                startup_timeout=10.0,
            )
            await supervisor.start()
            with pytest.raises(TimeoutError):
                await supervisor.wait_ready(timeout=2.0)
            assert supervisor.ready_replicas() == []
            assert supervisor.restarts_total >= 2
            status = supervisor.status()[0]
            assert status["state"] in ("starting", "restarting")
            assert status["last_exit_code"] == 2
            await supervisor.stop()

        asyncio.run(scenario())
