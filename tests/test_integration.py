"""Integration tests: full workflows across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import tmfg_dbht
from repro.baselines.hac import hac_labels
from repro.baselines.kmeans import kmeans
from repro.core.tmfg import construct_tmfg
from repro.datasets.similarity import (
    correlation_matrix,
    correlation_to_dissimilarity,
    detrended_log_returns,
    similarity_and_dissimilarity,
)
from repro.datasets.stocks import cluster_sector_counts, generate_stock_market
from repro.datasets.synthetic import make_time_series_dataset
from repro.datasets.ucr_like import load_ucr_like
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.edge_sum import edge_weight_sum_ratio


class TestTimeSeriesWorkflow:
    """The paper's main workflow: correlations -> TMFG -> DBHT -> clusters."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return make_time_series_dataset(
            num_objects=140, length=96, num_classes=4, noise=1.2, seed=17,
            outlier_fraction=0.05,
        )

    @pytest.fixture(scope="class")
    def matrices(self, dataset):
        return similarity_and_dissimilarity(dataset.data)

    def test_tdbht_beats_random_assignment(self, dataset, matrices):
        similarity, dissimilarity = matrices
        result = tmfg_dbht(similarity, dissimilarity, prefix=1)
        labels = result.cut(dataset.num_classes)
        assert adjusted_rand_index(dataset.labels, labels) > 0.3

    def test_tdbht_competitive_with_hac(self, dataset, matrices):
        similarity, dissimilarity = matrices
        result = tmfg_dbht(similarity, dissimilarity, prefix=1)
        dbht_ari = adjusted_rand_index(dataset.labels, result.cut(dataset.num_classes))
        complete_ari = adjusted_rand_index(
            dataset.labels, hac_labels(dissimilarity, dataset.num_classes, "complete")
        )
        # The paper's headline quality claim, reproduced with slack: DBHT is
        # at least competitive with complete linkage on noisy data.
        assert dbht_ari >= complete_ari - 0.15

    def test_batched_prefix_keeps_useful_structure(self, dataset, matrices):
        # The paper observes that on small data sets a large prefix degrades
        # clustering quality noticeably (the prefix is a large fraction of
        # the graph), while the *graph* quality (kept edge weight) stays
        # within a few percent of the exact TMFG.  At this reduced scale we
        # therefore assert the graph-quality claim tightly and the
        # clustering claim loosely.
        similarity, dissimilarity = matrices
        batched = tmfg_dbht(similarity, dissimilarity, prefix=10)
        batched_ari = adjusted_rand_index(
            dataset.labels, batched.cut(dataset.num_classes)
        )
        assert batched_ari > 0.15
        sequential = construct_tmfg(similarity, prefix=1, build_bubble_tree=False)
        ratio = edge_weight_sum_ratio(batched.tmfg.graph, sequential.graph)
        assert ratio >= 0.9

    def test_edge_sum_ratio_in_paper_band(self, matrices):
        similarity, _ = matrices
        sequential = construct_tmfg(similarity, prefix=1, build_bubble_tree=False)
        batched = construct_tmfg(similarity, prefix=10, build_bubble_tree=False)
        ratio = edge_weight_sum_ratio(batched.graph, sequential.graph)
        assert 0.9 <= ratio <= 1.05

    def test_kmeans_baseline_works_on_raw_series(self, dataset):
        result = kmeans(dataset.data, dataset.num_classes, seed=0, num_restarts=3)
        assert adjusted_rand_index(dataset.labels, result.labels) > 0.2


class TestUCRWorkflow:
    def test_ucr_like_dataset_through_pipeline(self):
        dataset = load_ucr_like(11, scale=0.08, noise=1.0, seed=4)
        similarity, dissimilarity = similarity_and_dissimilarity(dataset.data)
        result = tmfg_dbht(similarity, dissimilarity, prefix=5)
        labels = result.cut(dataset.num_classes)
        assert len(np.unique(labels)) == dataset.num_classes
        assert adjusted_rand_index(dataset.labels, labels) > 0.2


class TestStockWorkflow:
    def test_stock_clustering_recovers_sector_structure(self):
        market = generate_stock_market(num_stocks=120, num_days=220, seed=9)
        returns = detrended_log_returns(market.prices)
        similarity = correlation_matrix(returns)
        dissimilarity = correlation_to_dissimilarity(similarity)
        result = tmfg_dbht(similarity, dissimilarity, prefix=10)
        labels = result.cut(11)
        ari = adjusted_rand_index(market.sectors, labels)
        assert ari > 0.2
        counts = cluster_sector_counts(labels, market.sectors, num_sectors=11)
        assert counts.sum() == 120

    def test_stock_clusters_via_public_api_are_deterministic(self):
        market = generate_stock_market(num_stocks=80, num_days=150, seed=2)
        returns = detrended_log_returns(market.prices)
        similarity = correlation_matrix(returns)
        first = tmfg_dbht(similarity, prefix=5).cut(11)
        second = tmfg_dbht(similarity, prefix=5).cut(11)
        np.testing.assert_array_equal(first, second)
