"""Smoke tests for the remaining figure reproductions on a micro configuration.

The full-size reproductions run in the benchmark suite; these tests exercise
the same code paths on a deliberately tiny configuration so that the figure
entry points stay covered by ``pytest tests/`` alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure1_quality_vs_time,
    figure3_runtime,
    figure8_quality,
    figure9_spectral_sensitivity,
    figure10_stock_clusters,
    figure11_market_cap,
    scaling_with_data_size,
    speedup_factors,
)


@pytest.fixture(scope="module")
def micro_config():
    return ExperimentConfig(
        scale=0.012,
        noise=1.1,
        outlier_fraction=0.05,
        dataset_ids=(6, 11),
        slow_dataset_ids=(11,),
        max_slow_objects=36,
        prefix_sizes=(1, 4),
        thread_counts=(1, 8, 48),
        spectral_neighbor_counts=(4, 8),
        stock_count=60,
        stock_days=90,
        stock_prefix=5,
        seed=3,
    )


class TestFigure1:
    def test_rows_and_ranges(self, micro_config):
        result = figure1_quality_vs_time(micro_config)
        assert len(result["rows"]) == 4 * len(micro_config.slow_dataset_ids)
        for _, _, method, seconds, ari in result["rows"]:
            assert seconds > 0
            assert -1.0 <= ari <= 1.0

    def test_tmfg_dbht_faster_than_pmfg_dbht(self, micro_config):
        result = figure1_quality_vs_time(micro_config)
        seconds = {row[2]: row[3] for row in result["rows"]}
        assert seconds["PAR-TDBHT-1"] < seconds["PMFG-DBHT"]


class TestFigure3:
    def test_fast_methods_cover_all_datasets(self, micro_config):
        result = figure3_runtime(micro_config)
        dataset_ids = {row[0] for row in result["rows"]}
        assert dataset_ids == set(micro_config.dataset_ids)

    def test_predicted_parallel_time_only_for_tdbht(self, micro_config):
        result = figure3_runtime(micro_config)
        for _, method, _, predicted, _ in result["rows"]:
            if method in ("COMP", "AVG"):
                assert predicted is None
            if method.startswith("PAR-TDBHT") and predicted is not None:
                assert predicted > 0


class TestFigure8:
    def test_all_methods_present(self, micro_config):
        result = figure8_quality(micro_config)
        methods = {row[1] for row in result["rows"]}
        assert {"PAR-TDBHT-1", "COMP", "AVG", "K-MEANS", "K-MEANS-S"} <= methods

    def test_ari_values_in_range(self, micro_config):
        result = figure8_quality(micro_config)
        for _, _, ari in result["rows"]:
            assert -1.0 <= ari <= 1.0


class TestFigure9:
    def test_each_dataset_swept_over_beta(self, micro_config):
        result = figure9_spectral_sensitivity(micro_config)
        betas_per_dataset = {}
        for dataset_id, beta, _ in result["rows"]:
            betas_per_dataset.setdefault(dataset_id, set()).add(beta)
        for betas in betas_per_dataset.values():
            assert betas == set(micro_config.spectral_neighbor_counts)


class TestStockFigures:
    def test_figure10_counts_cover_all_stocks(self, micro_config):
        result = figure10_stock_clusters(micro_config)
        assert result["counts"].sum() == micro_config.stock_count
        assert -1.0 <= result["ari_prefix"] <= 1.0

    def test_figure11_has_sector_and_cluster_rows(self, micro_config):
        result = figure11_market_cap(micro_config)
        groupings = {row[0] for row in result["rows"]}
        assert groupings == {"sector", "cluster"}
        counts = sum(row[2] for row in result["rows"] if row[0] == "sector")
        assert counts == micro_config.stock_count


class TestTextResults:
    def test_speedup_factors_positive(self, micro_config):
        result = speedup_factors(micro_config)
        for row in result["rows"]:
            assert all(value > 0 for value in row[1:])

    def test_scaling_exponent_fitted(self, micro_config):
        result = scaling_with_data_size(micro_config, sizes=(60, 90, 130), prefix=4)
        assert len(result["rows"]) == 3
        assert 0.5 <= result["exponent"] <= 4.0
