"""Tests for the content-addressed result cache and the batch fan-out.

Covers the cache tiers (LRU order, disk round-trip, corrupt/stale entries
degrading to misses), fingerprint semantics, byte-identical cache hits
through the estimator layer, ``cluster_many`` deduplication and its
serving-path bugfixes, and the shared-memory matrix transport.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.api import ClusteringConfig, ClusterResult, cluster_many, make_estimator
from repro.api.batch import fit_one
from repro.cache import (
    CACHE_KNOB_FIELDS,
    ResultCache,
    clear_result_caches,
    config_fingerprint,
    get_result_cache,
    matrix_fingerprint,
    result_cache_key,
)
from repro.cache.store import _ENTRY_MAGIC, ENTRY_FORMAT_VERSION
from repro.datasets.similarity import similarity_and_dissimilarity
from repro.datasets.synthetic import make_time_series_dataset
from repro.parallel import shm
from repro.parallel.scheduler import ProcessBackend, SerialBackend, ThreadBackend


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Every test starts and ends with empty process-wide caches."""
    clear_result_caches()
    yield
    clear_result_caches()


@pytest.fixture(scope="module")
def similarity():
    dataset = make_time_series_dataset(
        num_objects=40, length=64, num_classes=3, noise=1.0, seed=11
    )
    matrix, _ = similarity_and_dissimilarity(dataset.data)
    return matrix


def _config(**overrides):
    base = dict(precomputed=True, num_clusters=3, prefix=4, cache=True)
    base.update(overrides)
    return ClusteringConfig(**base)


class TestFingerprints:
    def test_matrix_fingerprint_is_content_addressed(self):
        a = np.arange(16, dtype=float).reshape(4, 4)
        assert matrix_fingerprint(a) == matrix_fingerprint(a.copy())
        # Non-contiguous views of the same data agree with their copies.
        wide = np.arange(32, dtype=float).reshape(4, 8)
        assert matrix_fingerprint(wide[:, ::2]) == matrix_fingerprint(
            wide[:, ::2].copy()
        )

    def test_matrix_fingerprint_sensitive_to_bytes_shape_dtype(self):
        a = np.arange(16, dtype=float).reshape(4, 4)
        bumped = a.copy()
        bumped[2, 3] = np.nextafter(bumped[2, 3], np.inf)
        assert matrix_fingerprint(a) != matrix_fingerprint(bumped)
        assert matrix_fingerprint(a) != matrix_fingerprint(a.reshape(2, 8))
        assert matrix_fingerprint(a) != matrix_fingerprint(a.astype(np.float32))

    def test_config_fingerprint_ignores_cache_knobs(self, tmp_path):
        plain = _config(cache=False, cache_dir=None)
        cached = _config(cache=True, cache_dir=str(tmp_path))
        assert config_fingerprint(plain) == config_fingerprint(cached)
        assert set(CACHE_KNOB_FIELDS) == {"cache", "cache_dir"}

    def test_config_fingerprint_sensitive_to_method_knobs(self):
        assert config_fingerprint(_config()) != config_fingerprint(_config(prefix=5))
        assert config_fingerprint(_config()) != config_fingerprint(
            _config(num_clusters=4)
        )

    def test_apsp_method_fingerprints_never_collide(self):
        """Approximate results must never be served for exact cache keys.

        Configs differing only in ``apsp_method`` — and, within landmark
        mode, only in the landmark count — must all fingerprint apart.
        """
        configs = [
            _config(),
            _config(apsp_method="floyd"),
            _config(apsp_method="scipy"),
            _config(apsp_method="incremental"),
            _config(apsp_method="landmark"),
            _config(apsp_method="landmark", landmarks=8),
            _config(apsp_method="landmark", landmarks=16),
        ]
        fingerprints = [config_fingerprint(config) for config in configs]
        assert len(set(fingerprints)) == len(configs)

    def test_result_cache_key_covers_explicit_dissimilarity(self, similarity):
        config = _config()
        dis = np.sqrt(np.clip(2.0 * (1.0 - similarity), 0.0, None))
        assert result_cache_key(config, similarity) != result_cache_key(
            config, similarity, dis
        )


class TestResultCacheLRU:
    def test_lru_evicts_least_recently_used_first(self):
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, key.upper())
        assert cache.get("a") == "A"  # refresh a: b is now the oldest
        cache.put("d", "D")
        assert cache.keys() == ["c", "a", "d"]
        assert cache.get("b") is None
        assert cache.stats.evictions == 1
        assert cache.stats.misses == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_stats_track_hits_and_misses(self):
        cache = ResultCache(max_entries=2)
        assert cache.get("nope") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.as_dict()["hit_rate"] == 0.5


class TestResultCacheDisk:
    def test_disk_round_trip_across_instances(self, tmp_path):
        first = ResultCache(cache_dir=str(tmp_path))
        first.put("deadbeef", {"labels": [1, 2, 3]})
        # A fresh instance (fresh memory tier) must hit via disk.
        second = ResultCache(cache_dir=str(tmp_path))
        assert second.get("deadbeef") == {"labels": [1, 2, 3]}
        assert second.stats.disk_hits == 1
        # ... and promote the entry into its memory tier.
        assert "deadbeef" in second

    def test_corrupted_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        cache.put("feedface", "value")
        (path,) = [p for p in os.listdir(tmp_path) if p.endswith(".pkl")]
        with open(tmp_path / path, "wb") as handle:
            handle.write(b"\x80\x04 truncated garbage")
        fresh = ResultCache(cache_dir=str(tmp_path))
        assert fresh.get("feedface") is None
        assert fresh.stats.disk_errors == 1
        assert fresh.stats.misses == 1
        # The bad file is pruned so it is not re-parsed forever.
        assert not (tmp_path / path).exists()

    def test_stale_format_version_degrades_to_miss(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path))
        cache.put("cafebabe", "value")
        (path,) = [str(tmp_path / p) for p in os.listdir(tmp_path)]
        from repro import __version__

        envelope = (_ENTRY_MAGIC, ENTRY_FORMAT_VERSION + 1, __version__, "cafebabe", "value")
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        fresh = ResultCache(cache_dir=str(tmp_path))
        assert fresh.get("cafebabe") is None
        assert fresh.stats.disk_errors == 1

    def test_unwritable_cache_dir_degrades_persistence_not_correctness(self, tmp_path):
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("a file where the cache dir should be")
        cache = ResultCache(cache_dir=str(blocked))
        cache.put("k", "v")  # must not raise
        assert cache.get("k") == "v"  # memory tier still serves it
        assert cache.stats.disk_errors == 1

    def test_registry_shares_instances_per_directory(self, tmp_path):
        assert get_result_cache() is get_result_cache()
        assert get_result_cache(str(tmp_path)) is get_result_cache(str(tmp_path))
        assert get_result_cache() is not get_result_cache(str(tmp_path))


class TestEstimatorCacheIntegration:
    def test_hit_is_byte_identical_to_cold_fit(self, similarity):
        config = _config()
        cold = make_estimator(config.method, config).fit(similarity).result_
        warm = make_estimator(config.method, config).fit(similarity).result_
        assert get_result_cache().stats.hits == 1
        # Labels, linkage artefacts, and the timing structure come back
        # verbatim: the serialized payloads are byte-identical.
        assert warm.to_json() == cold.to_json()
        assert np.array_equal(warm.labels, cold.labels)
        assert warm.step_seconds == cold.step_seconds
        assert warm.dendrogram is not None

    def test_cache_disabled_recomputes(self, similarity):
        config = _config(cache=False)
        make_estimator(config.method, config).fit(similarity)
        make_estimator(config.method, config).fit(similarity)
        assert get_result_cache().stats.lookups == 0

    def test_hit_serves_a_clone_not_the_cached_object(self, similarity):
        config = _config()
        first = make_estimator(config.method, config).fit(similarity).result_
        first.labels[:] = -1  # a hostile caller scribbling on its result
        second = make_estimator(config.method, config).fit(similarity).result_
        assert np.all(second.labels >= 0)

    def test_disk_tier_round_trips_cluster_results(self, similarity, tmp_path):
        config = _config(cache_dir=str(tmp_path))
        cold = make_estimator(config.method, config).fit(similarity).result_
        clear_result_caches()  # forget the memory tier, keep the files
        warm = make_estimator(config.method, config).fit(similarity).result_
        assert warm.to_json() == cold.to_json()
        assert get_result_cache(str(tmp_path)).stats.disk_hits == 1

    def test_warm_start_fits_bypass_the_cache(self, similarity):
        from repro.core.tmfg import construct_tmfg

        config = _config()
        hints = construct_tmfg(similarity, prefix=4).warm_start_hints()
        estimator = make_estimator(config.method, config)
        estimator.fit(similarity, warm_start=hints)
        assert get_result_cache().stats.lookups == 0
        assert get_result_cache().stats.stores == 0

    def test_different_matrices_do_not_collide(self, similarity):
        config = _config()
        other = similarity.copy()
        other[1, 2] = other[2, 1] = other[1, 2] * 0.5
        a = make_estimator(config.method, config).fit(similarity).result_
        b = make_estimator(config.method, config).fit(other).result_
        assert get_result_cache().stats.hits == 0
        assert len(get_result_cache()) == 2
        assert a.to_json() != b.to_json()


class TestClusterManyDedup:
    def test_duplicates_fit_once_and_payloads_match(self, similarity, monkeypatch):
        calls = []

        def counting_fit(config, matrix):
            calls.append(1)
            return fit_one(config, matrix)

        import repro.api.batch as batch

        monkeypatch.setattr(batch, "fit_one", counting_fit)
        config = _config(cache=False)
        results = cluster_many([similarity] * 8, config)
        assert len(calls) == 1
        payloads = {r.to_json() for r in results}
        assert len(payloads) == 1
        assert all(r.labels is not results[0].labels for r in results[1:])

    def test_dedupe_false_fits_every_input(self, similarity, monkeypatch):
        calls = []
        import repro.api.batch as batch

        original = batch.fit_one

        def counting_fit(config, matrix):
            calls.append(1)
            return original(config, matrix)

        monkeypatch.setattr(batch, "fit_one", counting_fit)
        cluster_many([similarity] * 3, _config(cache=False), dedupe=False)
        assert len(calls) == 3

    def test_repeated_call_served_from_cache(self, similarity):
        config = _config()
        first = cluster_many([similarity] * 5, config)
        stores_after_first = get_result_cache().stats.stores
        hits_after_first = get_result_cache().stats.hits
        second = cluster_many([similarity] * 5, config)
        # No new stores: every result of the second call was a cache hit.
        assert get_result_cache().stats.stores == stores_after_first
        assert get_result_cache().stats.hits == hits_after_first + 1
        assert [r.to_json() for r in second] == [r.to_json() for r in first]

    def test_mixed_batch_preserves_input_order(self, similarity):
        other = similarity.copy()
        other[0, 1] = other[1, 0] = other[0, 1] * 0.5
        config = _config(cache=False)
        results = cluster_many([similarity, other, similarity], config)
        assert results[0].to_json() == results[2].to_json()
        direct = fit_one(config, other)
        assert np.array_equal(results[1].labels, direct.labels)

    def test_workers_with_backend_instance_rejected(self, similarity):
        backend = SerialBackend()
        with pytest.raises(ValueError, match="workers"):
            cluster_many([similarity], _config(cache=False), backend=backend, workers=4)

    def test_workers_without_backend_rejected(self, similarity):
        # Regression: workers used to be silently ignored on the default
        # serial path — the caller who asked for 8 workers got a serial
        # run with no signal.
        with pytest.raises(ValueError, match="workers"):
            cluster_many([similarity], _config(cache=False), workers=8)

    def test_alias_method_shares_cache_with_direct_fits(self, similarity):
        # Regression: cluster_many used to fingerprint the raw config while
        # the estimator fingerprints its normalized one (par-tdbht pins to
        # tmfg-dbht), so alias ids stored every entry twice and never hit
        # what a direct estimator fit wrote.
        config = _config(method="par-tdbht")
        make_estimator(config.method, config).fit(similarity)
        stats = get_result_cache().stats
        assert (stats.misses, stats.stores) == (1, 1)
        results = cluster_many([similarity] * 3, config)
        assert stats.misses == 1  # every batch lookup hit the direct fit's entry
        assert stats.stores == 1
        direct = make_estimator(config.method, config).fit(similarity).result_
        assert results[0].to_json() == direct.to_json()

    def test_misses_are_stored_once(self, similarity):
        # Regression: serial/thread dispatch runs estimator.fit in-process,
        # which already stores the miss; the batch layer used to clone and
        # store the same entry a second time.
        cluster_many([similarity] * 5, _config())
        assert get_result_cache().stats.stores == 1

    def test_process_fanout_forces_per_fit_backend_serial(self, similarity):
        backend = ProcessBackend(num_workers=2)
        config = _config(cache=False, backend="thread", workers=2)
        try:
            with pytest.warns(RuntimeWarning, match="nest pools"):
                results = cluster_many([similarity], config, backend=backend)
        finally:
            backend.close()
        # The result's config records the forced-serial per-fit backend.
        assert results[0].config.backend is None
        assert results[0].config.workers is None

    def test_thread_fanout_keeps_per_fit_backend(self, similarity):
        backend = ThreadBackend(num_workers=2)
        try:
            results = cluster_many(
                [similarity], _config(cache=False, backend="thread", workers=2),
                backend=backend,
            )
        finally:
            backend.close()
        assert results[0].config.backend == "thread"


class TestSharedMemoryTransport:
    pytestmark = pytest.mark.skipif(
        not shm.shared_memory_available(), reason="no usable shared memory"
    )

    def test_round_trip_preserves_bytes(self):
        matrix = np.random.default_rng(3).normal(size=(17, 9))
        with shm.SharedMatrixArena() as arena:
            ref = arena.share(matrix)
            view = shm.open_matrix(ref)
            assert view.dtype == matrix.dtype
            assert np.array_equal(view, matrix)
            assert not view.flags.writeable

    def test_process_fanout_matches_serial_results(self, similarity):
        config = _config(cache=False)
        serial = cluster_many([similarity] * 3, config, dedupe=False)
        backend = ProcessBackend(num_workers=2)
        try:
            shipped = cluster_many(
                [similarity] * 3, config, backend=backend, dedupe=False
            )
        finally:
            backend.close()
        for a, b in zip(serial, shipped):
            assert np.array_equal(a.labels, b.labels)
            assert a.extras["edge_weight_sum"] == b.extras["edge_weight_sum"]

    def test_arena_cleans_up_segments(self):
        arena = shm.SharedMatrixArena()
        ref = arena.share(np.ones((4, 4)))
        arena.close()
        from multiprocessing import shared_memory as stdlib_shm

        with pytest.raises(FileNotFoundError):
            stdlib_shm.SharedMemory(name=ref.name)


class TestCacheConfigValidation:
    def test_cache_dir_requires_cache(self, tmp_path):
        with pytest.raises(ValueError, match="cache_dir"):
            ClusteringConfig(cache=False, cache_dir=str(tmp_path))

    def test_cache_knobs_round_trip_through_json(self, tmp_path):
        config = _config(cache_dir=str(tmp_path))
        assert ClusteringConfig.from_json(config.to_json()) == config


class TestConcurrentAccess:
    """N threads hammering one estimator config + the shared ResultCache."""

    def test_threads_hammering_one_estimator_and_cache(self, similarity):
        import threading

        config = _config()
        num_threads, rounds = 8, 5
        barrier = threading.Barrier(num_threads)
        results, errors = [], []

        def hammer():
            try:
                barrier.wait(timeout=30)
                for _ in range(rounds):
                    estimator = make_estimator(config.method, config)
                    estimator.fit(similarity)
                    results.append(estimator.result_.to_json())
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results) == num_threads * rounds
        # Every fit (computed or served from cache) agrees on everything
        # deterministic; only wall-clock timings may differ between the
        # racing first-round computes.
        deterministic = {
            json.dumps(
                {
                    key: payload[key]
                    for key in ("method", "config", "labels", "num_clusters", "extras")
                }
            )
            for payload in map(json.loads, results)
        }
        assert len(deterministic) == 1
        stats = get_result_cache().stats.snapshot()
        # Counters stay consistent under contention: every lookup was
        # either a hit or a miss, and misses each stored an entry.
        assert stats.hits + stats.misses == num_threads * rounds
        assert stats.stores == stats.misses
        assert stats.hits >= num_threads * (rounds - 1)

    def test_stats_readers_race_with_writers(self):
        import threading

        cache = ResultCache(max_entries=16)
        stop = threading.Event()
        snapshots, errors = [], []

        def reader():
            try:
                while not stop.is_set():
                    payload = cache.stats.as_dict()
                    # Mid-burst invariants: every store was preceded by its
                    # miss, and hit_rate is derived from one consistent
                    # (hits, lookups) pair, never a torn mixture.
                    assert payload["stores"] <= payload["misses"]
                    assert 0.0 <= payload["hit_rate"] <= 1.0
                    expected = (
                        payload["hits"] / (payload["hits"] + payload["misses"])
                        if payload["hits"] + payload["misses"]
                        else 0.0
                    )
                    assert payload["hit_rate"] == expected
                    snapshots.append(payload)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        def writer(seed):
            try:
                for i in range(300):
                    key = f"k{(seed * 7 + i) % 24}"
                    if cache.get(key) is None:
                        cache.put(key, i)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer, args=(s,)) for s in range(4)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=60)
        stop.set()
        for thread in readers:
            thread.join(timeout=60)
        assert not errors
        final = cache.stats.as_dict()
        assert final["hits"] + final["misses"] == 4 * 300
        assert final["stores"] == final["misses"]
        assert snapshots  # the readers actually raced the writers

    def test_cache_stats_pickle_round_trip(self):
        cache = ResultCache()
        cache.put("k", 1)
        cache.get("k")
        restored = pickle.loads(pickle.dumps(cache.stats.snapshot()))
        assert restored.hits == 1 and restored.stores == 1
        # The restored copy grew a fresh lock and stays readable.
        assert restored.as_dict()["hits"] == 1


class TestBatchFrontDoorEdges:
    def test_cluster_many_empty_returns_immediately(self):
        assert cluster_many([]) == []
        # No fingerprinting happened: the shared cache saw no lookups.
        assert get_result_cache().stats.snapshot().lookups == 0

    def test_cluster_many_empty_skips_backend_construction(self, monkeypatch):
        import repro.api.batch as batch_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("make_backend should not be called for []")

        monkeypatch.setattr(batch_module, "make_backend", boom)
        assert cluster_many([], backend="thread") == []

    def test_cluster_many_empty_still_validates_workers(self):
        with pytest.raises(ValueError, match="workers"):
            cluster_many([], workers=2)

    def test_fit_one_rejects_non_2d_input(self):
        config = ClusteringConfig()
        with pytest.raises(ValueError, match="2-D"):
            fit_one(config, np.arange(8.0))
        with pytest.raises(ValueError, match="2-D"):
            fit_one(config, np.zeros((2, 3, 4)))


def _shared_cache_writer(cache_dir: str, worker_index: int, rounds: int, queue) -> None:
    """One fleet-replica stand-in hammering the shared disk cache tier.

    Every worker writes the SAME deterministic value per key (as fleet
    replicas computing the same fingerprinted job would), so whichever
    write-then-rename wins the race, readers must see a complete, correct
    entry — never a torn or partial one.
    """
    try:
        from repro.cache.store import ResultCache

        writer = ResultCache(max_entries=4, cache_dir=cache_dir)
        for i in range(rounds):
            key = f"fingerprint-{i % 3}"
            value = {"key": key, "labels": list(range(50)), "round": i % 3}
            writer._write_disk(key, value)
            # A fresh instance per read bypasses this process's in-memory
            # tier: the read must come from disk, mid-race.
            reader = ResultCache(max_entries=4, cache_dir=cache_dir)
            seen = reader.get(key)
            if seen is not None and seen != value:
                queue.put(("corrupt", worker_index, key, seen))
                return
        queue.put(("ok", worker_index))
    except Exception as error:  # pragma: no cover - surfaced in the parent
        queue.put(("error", worker_index, repr(error)))


class TestCrossProcessDiskCache:
    def test_racing_writers_to_one_fingerprint_never_tear(self, tmp_path):
        """N processes racing write-then-rename on the same keys in one
        --cache-dir (the `repro serve --workers N --cache-dir` layout):
        every read sees a whole entry and no temp droppings survive."""
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        cache_dir = str(tmp_path / "shared-cache")
        queue = context.Queue()
        workers = [
            context.Process(
                target=_shared_cache_writer, args=(cache_dir, index, 20, queue)
            )
            for index in range(4)
        ]
        for process in workers:
            process.start()
        outcomes = [queue.get(timeout=120) for _ in workers]
        for process in workers:
            process.join(timeout=60)
        assert all(outcome[0] == "ok" for outcome in outcomes), outcomes
        # After the dust settles: each key readable, correct, and whole.
        survivor = ResultCache(max_entries=4, cache_dir=cache_dir)
        for i in range(3):
            key = f"fingerprint-{i}"
            assert survivor.get(key) == {
                "key": key, "labels": list(range(50)), "round": i,
            }
        # Atomic rename cleaned up after itself: no .tmp files left.
        leftovers = [name for name in os.listdir(cache_dir) if name.endswith(".tmp")]
        assert leftovers == []


class TestFingerprintFieldAccounting:
    """FINGERPRINT_FIELDS + CACHE_KNOB_FIELDS must cover the dataclass
    exactly — the runtime twin of the config-fingerprint lint rule."""

    def test_accounting_partitions_the_config_fields(self):
        import dataclasses

        from repro.cache.fingerprint import CACHE_KNOB_FIELDS, FINGERPRINT_FIELDS

        declared = {f.name for f in dataclasses.fields(ClusteringConfig)}
        consumed = set(FINGERPRINT_FIELDS)
        excluded = set(CACHE_KNOB_FIELDS)
        assert consumed | excluded == declared
        assert not consumed & excluded

    def test_knob_changes_leave_the_fingerprint_alone(self):
        from repro.cache.fingerprint import config_fingerprint

        base = ClusteringConfig(num_clusters=3, prefix=2)
        cached = base.replace(cache=True, cache_dir="/tmp/somewhere")
        assert config_fingerprint(base) == config_fingerprint(cached)

    def test_every_fingerprint_field_changes_the_key(self):
        from repro.cache.fingerprint import config_fingerprint

        base = ClusteringConfig(num_clusters=3, prefix=2)
        variants = {
            "method": "hac-average",
            "num_clusters": 4,
            "prefix": 3,
            "apsp_method": "landmark",
            "landmarks": 16,
            "kernel": "csr",
            "backend": "thread",
            "workers": 2,
            "warm_start": True,
            "precomputed": True,
            "linkage": "average",
            "seed": 7,
            "num_restarts": 4,
            "spectral_neighbors": 12,
        }
        from repro.cache.fingerprint import FINGERPRINT_FIELDS

        assert set(variants) == set(FINGERPRINT_FIELDS)
        reference = config_fingerprint(base)
        for field_name, value in variants.items():
            changed = config_fingerprint({**base.to_dict(), field_name: value})
            assert changed != reference, field_name
