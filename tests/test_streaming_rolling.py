"""Differential tests for the incremental rolling-window correlation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.similarity import correlation_matrix
from repro.graph.matrix import validate_similarity_matrix
from repro.streaming.rolling import RollingCorrelation


def _stream(num_assets: int, num_steps: int, seed: int, scale: float = 0.01) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, scale, size=(num_assets, num_steps))


class TestRollingMatchesRecomputation:
    @pytest.mark.parametrize("window", [8, 20, 50])
    @pytest.mark.parametrize("hop", [1, 3, 7])
    def test_matches_corrcoef_after_many_ticks(self, window, hop):
        data = _stream(12, window + 40 * hop, seed=window * 100 + hop)
        rolling = RollingCorrelation(12, window)
        rolling.push(data[:, :window])
        position = window
        ticks = 0
        while position + hop <= data.shape[1]:
            rolling.push(data[:, position : position + hop])
            position += hop
            ticks += 1
            expected = np.corrcoef(data[:, position - window : position])
            np.testing.assert_allclose(
                rolling.correlation(), expected, atol=1e-10, rtol=0.0
            )
        assert ticks >= 20

    def test_matches_repro_correlation_matrix(self):
        data = _stream(10, 90, seed=3)
        rolling = RollingCorrelation(10, 30)
        for t in range(data.shape[1]):
            rolling.push(data[:, t])
            if rolling.ready:
                expected = correlation_matrix(data[:, t - 29 : t + 1])
                np.testing.assert_allclose(
                    rolling.correlation(), expected, atol=1e-10, rtol=0.0
                )

    def test_partial_window_matches_recomputation(self):
        data = _stream(8, 12, seed=9)
        rolling = RollingCorrelation(8, 40)
        rolling.push(data)
        assert not rolling.ready
        assert rolling.num_observations == 12
        np.testing.assert_allclose(
            rolling.correlation(), np.corrcoef(data), atol=1e-10, rtol=0.0
        )

    def test_drift_guard_refresh_keeps_long_streams_tight(self):
        data = _stream(6, 2_000, seed=11, scale=1.0) + 5.0  # offset worsens cancellation
        rolling = RollingCorrelation(6, 25, refresh_every=64)
        rolling.push(data[:, :25])
        for t in range(25, data.shape[1]):
            rolling.push(data[:, t])
        expected = np.corrcoef(data[:, -25:])
        np.testing.assert_allclose(rolling.correlation(), expected, atol=1e-10, rtol=0.0)


class TestConstantSeries:
    def test_constant_row_is_uncorrelated_not_nan(self):
        data = _stream(6, 40, seed=5)
        data[2, :] = 3.25  # constant series: zero windowed variance
        rolling = RollingCorrelation(6, 16)
        rolling.push(data[:, :16])
        for t in range(16, 40):
            rolling.push(data[:, t])
        matrix = rolling.correlation()
        assert np.all(np.isfinite(matrix))
        assert np.all(matrix[2, :2] == 0.0) and np.all(matrix[2, 3:] == 0.0)
        assert matrix[2, 2] == 1.0
        expected = correlation_matrix(data[:, -16:])
        np.testing.assert_allclose(matrix, expected, atol=1e-10, rtol=0.0)

    def test_series_constant_only_inside_window(self):
        data = _stream(5, 60, seed=6)
        data[0, 30:] = -1.5  # becomes constant after day 30
        rolling = RollingCorrelation(5, 20)
        for t in range(60):
            rolling.push(data[:, t])
        matrix = rolling.correlation()
        assert np.all(matrix[0, 1:] == 0.0)
        np.testing.assert_allclose(
            matrix, correlation_matrix(data[:, -20:]), atol=1e-10, rtol=0.0
        )


class TestRollingBookkeeping:
    def test_window_data_is_ordered_oldest_first(self):
        data = _stream(4, 25, seed=1)
        rolling = RollingCorrelation(4, 10)
        for t in range(25):
            rolling.push(data[:, t])
        np.testing.assert_array_equal(rolling.window_data(), data[:, -10:])
        assert rolling.total_pushed == 25

    def test_block_and_columnwise_pushes_agree(self):
        data = _stream(5, 33, seed=8)
        by_block = RollingCorrelation(5, 12)
        by_column = RollingCorrelation(5, 12)
        by_block.push(data)
        for t in range(33):
            by_column.push(data[:, t])
        np.testing.assert_array_equal(by_block.window_data(), by_column.window_data())
        np.testing.assert_allclose(
            by_block.correlation(), by_column.correlation(), atol=1e-12, rtol=0.0
        )

    def test_emitted_matrix_is_valid_similarity(self):
        data = _stream(6, 30, seed=2)
        rolling = RollingCorrelation(6, 20)
        rolling.push(data[:, :20])
        validate_similarity_matrix(rolling.correlation())

    def test_ring_buffer_only_mode(self):
        data = _stream(5, 30, seed=4)
        rolling = RollingCorrelation(5, 12, track_moments=False)
        rolling.push(data)
        np.testing.assert_array_equal(rolling.window_data(), data[:, -12:])
        with pytest.raises(ValueError, match="track_moments"):
            rolling.correlation()

    def test_rejects_bad_inputs(self):
        rolling = RollingCorrelation(4, 8)
        with pytest.raises(ValueError):
            rolling.push(np.ones((3, 2)))
        with pytest.raises(ValueError):
            rolling.push(np.array([1.0, np.nan, 0.0, 2.0]))
        with pytest.raises(ValueError):
            rolling.correlation()  # not enough observations
        with pytest.raises(ValueError):
            RollingCorrelation(4, 1)
        with pytest.raises(ValueError):
            RollingCorrelation(0, 8)
        with pytest.raises(ValueError):
            RollingCorrelation(4, 8, refresh_every=0)
